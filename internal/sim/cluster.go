// Cluster partitions one simulation across several Engines and replays
// their interactions in a canonical order, so a machine split over
// multiple cores produces bit-identical results to a sequential run —
// by construction, not by luck.
//
// # Model
//
// The machine's sequential units are domains (see Domain): each node is
// one domain, and the shared mesh fabric is the hub domain. A Cluster
// owns P partition engines (each holding the events of a disjoint set of
// node domains) plus one hub engine (holding the fabric's events). Node
// events may touch only their own node's state; the only cross-domain
// traffic is
//
//   - posts (node → hub): packet injections, FIFO credits, crash
//     notifications — buffered per partition during a node phase and
//     replayed onto the hub engine sorted by (time, domain, creation
//     order), which is exactly the order a single engine with the
//     (at, dom, seq) key would have fired them in;
//   - messages (hub → node): packet deliveries and injector-free
//     callbacks — recorded in hub execution order and run sequentially
//     by the coordinator, which is exactly where a single engine would
//     have run them inline.
//
// # Conservative lookahead
//
// The rendezvous is a bounded-horizon barrier (conservative PDES in the
// Chandy–Misra–Bryant tradition). Each round computes
//
//	T = min next event over all engines
//	W = min(hub's next event, probe() + lookahead)
//
// where probe() lower-bounds the earliest future post any partition can
// make (the NICs' pipeline floors plus the fault plan's next crash) and
// lookahead is the minimum post→consequence latency through the mesh
// (one flit time). If W > T the round is a window: every partition runs
// its node phase to W in parallel, then the hub drains to W; no message
// can land inside the window, which the coordinator asserts. Otherwise
// the round is a tick: partitions fire only events at exactly T (run
// bound pinned to T, the same yield a sequential engine with a pending
// event at T takes), the hub drains T, and messages are run — repeating
// until the instant is exhausted.
//
// Parallelism is a WaitGroup fan-out per node phase; partition state
// needs no locks because partitions are disjoint and the hub/message
// phases run only while node phases are quiescent (the barrier provides
// the happens-before edges).
//
// # Exact single-step mode
//
// Step, RunWhile, RunUntil and RunFor do not use rounds: they fire one
// event at a time in the canonical global order (smallest (at, dom)
// head across engines; the hub wins ties because a pending post was
// created by an already-fired event), with the stepped engine's run
// bound set so run-ahead components (the batched CPU) see exactly the
// horizon a single shared heap would have shown them. Post replays and
// the messages they produce drain inside the Step that fired the
// originating event — sequentially those calls ran inside the event
// itself — so the number and position of Step boundaries match the
// sequential engine exactly, and harness code that interleaves Go-side
// checks between events (futures, stall loops) behaves identically to
// the sequential engine, event for event. Setting Sequential forces
// drains onto this path too, which is
// the A/B reference the differential tests compare the parallel rounds
// against.
package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Post is one node→hub action: run fn on the hub engine at time At in
// domain Dom (the posting node's domain, so replay order matches the
// sequential interleaving).
type Post struct {
	At  Time
	Dom Domain
	Fn  func()
}

// deferred is one hub→node message, run after the hub phase that
// produced it.
type deferred struct {
	part int
	at   Time
	fn   func()
}

// Cluster runs one machine partitioned across several engines.
type Cluster struct {
	parts []*Engine
	hub   *Engine
	look  Time // minimum post→node-consequence latency (mesh flit time)
	probe func() Time

	posts  [][]Post // per-partition post buffers (only owner appends)
	merged []Post   // coordinator scratch for the sorted replay
	msgs   []deferred

	// Sequential forces DrainBudget onto the exact single-step path
	// (differential testing); Step/RunWhile/RunUntil always use it.
	Sequential bool

	// Parallel disables the goroutine fan-out when false (set for
	// single-partition clusters); rounds still run, inline.
	parallel bool

	// pacer, when non-nil, observes the canonical global event order at
	// its deadlines (see pacer.go). The coordinator paces before rounds
	// and exact steps and caps windowed rounds at the next deadline, so
	// the cut matches a sequential engine's exactly.
	pacer Pacer
}

// NewCluster builds a cluster over the given partition engines and the
// hub engine. look is the conservative lookahead: the minimum simulated
// delay between a node→hub post and any node-visible consequence.
func NewCluster(parts []*Engine, hub *Engine, look Time) *Cluster {
	if look <= 0 {
		panic("sim: cluster lookahead must be positive")
	}
	c := &Cluster{
		parts:    parts,
		hub:      hub,
		look:     look,
		posts:    make([][]Post, len(parts)),
		parallel: len(parts) > 1,
	}
	return c
}

// SetProbe installs the lookahead probe: a lower bound on the earliest
// simulated time any partition could make its next post. It is called
// only between phases (never concurrently with node phases).
func (c *Cluster) SetProbe(f func() Time) { c.probe = f }

// Parts returns the partition engines (for per-component wiring).
func (c *Cluster) Parts() []*Engine { return c.parts }

// Hub returns the hub engine.
func (c *Cluster) Hub() *Engine { return c.hub }

// PostTo buffers a node→hub action from partition part. Only events
// running on partition part's engine may call it (each partition appends
// to its own buffer, so node phases need no locks).
func (c *Cluster) PostTo(part int, p Post) {
	c.posts[part] = append(c.posts[part], p)
}

// Defer records a hub→node message for partition part at the hub's
// current time; the coordinator runs it after the hub phase. Only hub
// events may call it.
func (c *Cluster) Defer(part int, fn func()) {
	c.msgs = append(c.msgs, deferred{part: part, at: c.hub.Now(), fn: fn})
}

// Now returns the cluster's observable time: the furthest any engine
// has advanced.
func (c *Cluster) Now() Time {
	t := c.hub.Now()
	for _, e := range c.parts {
		if n := e.Now(); n > t {
			t = n
		}
	}
	return t
}

// Fired returns the total events executed across all engines.
func (c *Cluster) Fired() uint64 {
	n := c.hub.Fired()
	for _, e := range c.parts {
		n += e.Fired()
	}
	return n
}

// Pending returns the total events waiting across all engines.
func (c *Cluster) Pending() int {
	n := c.hub.Pending() + len(c.msgs)
	for i, e := range c.parts {
		n += e.Pending() + len(c.posts[i])
	}
	return n
}

// MaxPending returns the deepest any single engine's queue has been.
func (c *Cluster) MaxPending() int {
	n := c.hub.MaxPending()
	for _, e := range c.parts {
		if m := e.MaxPending(); m > n {
			n = m
		}
	}
	return n
}

// Failed returns the canonically-first failure across all engines: the
// one with the smallest (time, domain) stamp, which is the failure a
// sequential run would have surfaced. Nil when no engine failed.
func (c *Cluster) Failed() error {
	var err error
	var at Time
	var dom Domain
	consider := func(e *Engine) {
		if e.failure == nil {
			return
		}
		fa, fd := e.FailedAt()
		if err == nil || fa < at || (fa == at && fd < dom) {
			err, at, dom = e.failure, fa, fd
		}
	}
	consider(c.hub)
	for _, e := range c.parts {
		consider(e)
	}
	return err
}

// Fail records a failure on the hub engine (harness-level aborts).
func (c *Cluster) Fail(err error) { c.hub.Fail(err) }

// Reset returns every engine to time zero and discards buffered posts
// and messages.
func (c *Cluster) Reset() {
	c.hub.Reset()
	for _, e := range c.parts {
		e.Reset()
	}
	for i := range c.posts {
		c.posts[i] = c.posts[i][:0]
	}
	c.msgs = c.msgs[:0]
}

// nextTime returns the earliest pending event time across all engines.
func (c *Cluster) nextTime() Time {
	t := c.hub.NextEventAt()
	for _, e := range c.parts {
		if n := e.NextEventAt(); n < t {
			t = n
		}
	}
	return t
}

// flushPosts replays buffered posts onto the hub engine in canonical
// order: (time, domain) sorted, creation order within a domain (the sort
// is stable and each partition's buffer is already in creation order;
// one domain never spans partitions). The hub heap's (at, dom, seq) key
// then interleaves them with fabric events exactly as a single shared
// heap would have.
func (c *Cluster) flushPosts() {
	m := c.merged[:0]
	for i := range c.posts {
		m = append(m, c.posts[i]...)
		c.posts[i] = c.posts[i][:0]
	}
	if len(m) == 0 {
		c.merged = m
		return
	}
	sort.SliceStable(m, func(a, b int) bool {
		if m[a].At != m[b].At {
			return m[a].At < m[b].At
		}
		return m[a].Dom < m[b].Dom
	})
	for i := range m {
		c.hub.AtDom(m[i].Dom, m[i].At, m[i].Fn)
	}
	clear(m)
	c.merged = m[:0]
}

// flushMsgs runs buffered hub→node messages in hub execution order,
// advancing the target partition's clock to the message time first (safe:
// nothing earlier can be pending, the message time is the current global
// instant).
func (c *Cluster) flushMsgs() {
	for i := 0; i < len(c.msgs); i++ {
		m := c.msgs[i]
		e := c.parts[m.part]
		e.AdvanceTo(m.at)
		m.fn()
	}
	c.msgs = c.msgs[:0]
}

// nodePhase runs fn over every partition engine — concurrently when the
// cluster is parallel, inline otherwise. It is the only place goroutines
// touch partition state; the WaitGroup barrier publishes everything back
// to the coordinator.
func (c *Cluster) nodePhase(fn func(*Engine)) {
	if !c.parallel {
		for _, e := range c.parts {
			fn(e)
		}
		return
	}
	var wg sync.WaitGroup
	for _, e := range c.parts {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			fn(e)
		}(e)
	}
	wg.Wait()
}

// windowEdge returns the horizon W for a round starting at global time
// T: events strictly before W can fire without rendezvous. W > T selects
// a windowed round; W == T a tick round.
func (c *Cluster) windowEdge(T Time) Time {
	w := c.hub.NextEventAt()
	p := Forever
	if c.probe != nil {
		p = c.probe()
	}
	if p < T {
		p = T // a probe may lag; posts can never be scheduled in the past
	}
	if p < Forever-c.look {
		if edge := p + c.look; edge < w {
			w = edge
		}
	}
	if c.pacer != nil {
		// Never fire an event at/after a pending observation deadline:
		// end the window there so the pacer sees the exact cut.
		if d := c.pacer.NextDeadline(); d < w {
			w = d
		}
	}
	return w
}

// round executes one rendezvous round; it reports false when no events
// remain anywhere.
func (c *Cluster) round() bool {
	T := c.nextTime()
	if T == Forever {
		return false
	}
	if c.pacer != nil {
		pace(c.pacer, T)
	}
	if w := c.windowEdge(T); w > T {
		c.windowRound(w)
	} else {
		c.tickRound(T)
	}
	return true
}

// windowRound fires every node event strictly before w in parallel, then
// drains the hub to w. The lookahead bound guarantees the hub cannot
// produce node-side work inside the window.
func (c *Cluster) windowRound(w Time) {
	c.nodePhase(func(e *Engine) { e.runWindow(w) })
	c.flushPosts()
	for {
		at, _, ok := c.hub.headKey()
		if !ok || at >= w || c.hub.failure != nil {
			break
		}
		c.hub.Step()
	}
	if len(c.msgs) != 0 {
		panic(fmt.Sprintf("sim: cluster lookahead violated: %d message(s) produced inside window ending %v", len(c.msgs), w))
	}
}

// tickRound exhausts the single instant T: node phases at exactly T,
// post replay, hub drain to T, then messages — repeated until nothing at
// T remains. Messages at T may wake node events at T (interrupt
// delivery, thaw), hence the loop.
func (c *Cluster) tickRound(T Time) {
	for {
		c.nodePhase(func(e *Engine) { e.runAt(T) })
		c.flushPosts()
		for {
			at, _, ok := c.hub.headKey()
			if !ok || at > T || c.hub.failure != nil {
				break
			}
			c.hub.Step()
		}
		if len(c.msgs) > 0 {
			c.flushMsgs()
			continue
		}
		again := false
		for _, e := range c.parts {
			if at, _, ok := e.headKey(); ok && at <= T && e.failure == nil {
				again = true
				break
			}
		}
		if !again {
			return
		}
	}
}

// pick returns the engine holding the canonically-earliest pending event
// (nil when all queues are empty). The hub wins (at, dom) ties: a post
// pending there was created by a node event that already fired, so it
// precedes any still-pending node event with the same key.
func (c *Cluster) pick() *Engine {
	best := c.hub
	at, dom, ok := c.hub.headKey()
	if !ok {
		best = nil
		at = Forever
	}
	for _, e := range c.parts {
		ea, ed, eok := e.headKey()
		if !eok {
			continue
		}
		if best == nil || ea < at || (ea == at && ed < dom) {
			best, at, dom = e, ea, ed
		}
	}
	return best
}

// postCount reports how many node→hub posts are buffered.
func (c *Cluster) postCount() int {
	n := 0
	for i := range c.posts {
		n += len(c.posts[i])
	}
	return n
}

// stepOn fires one event on e with e's run bound set to limit, so
// run-ahead components yield exactly where a single shared heap would
// have made them yield. Post replays and the hub→node messages they
// produce drain within the same step: a sequential machine ran those
// calls synchronously inside the event that just fired, so they must
// not surface as extra Step() boundaries — harness polling loops that
// act once per Step would otherwise interleave differently (and, e.g.,
// issue extra bus transactions) than against a single engine.
func (c *Cluster) stepOn(e *Engine, limit Time) {
	fire := func(eng *Engine) {
		prevBound, prevBounded := eng.bound, eng.bounded
		eng.bound, eng.bounded = limit, true
		eng.Step()
		eng.bound, eng.bounded = prevBound, prevBounded
	}
	fire(e)
	if e == c.hub {
		c.flushMsgs()
	}
	for c.postCount() > 0 {
		n := c.postCount()
		c.flushPosts()
		// The replays sit at the hub's head: every other hub event keys
		// strictly after the fired event (pick gave the hub the tie),
		// while the replays key equal to it.
		for i := 0; i < n; i++ {
			fire(c.hub)
			c.flushMsgs()
		}
	}
}

// stepBounded fires the canonically-next event with the caller's bound
// folded in; it reports false when no events remain.
func (c *Cluster) stepBounded(callerBound Time) bool {
	e := c.pick()
	if e == nil {
		return false
	}
	if c.pacer != nil {
		pace(c.pacer, c.nextTime())
	}
	// The stepped engine must treat other engines' next events the way a
	// shared heap would: a run-ahead component may advance strictly up to
	// (never onto) them. RunBound is an inclusive edge, hence the -1.
	limit := callerBound
	consider := func(o *Engine) {
		if o == e {
			return
		}
		if n := o.NextEventAt(); n != Forever && n-1 < limit {
			limit = n - 1
		}
	}
	consider(c.hub)
	for _, o := range c.parts {
		consider(o)
	}
	c.stepOn(e, limit)
	return true
}

// Step fires the canonically-next event across all engines; it reports
// false if no events are pending anywhere.
func (c *Cluster) Step() bool { return c.stepBounded(Forever) }

// RunWhile fires events in canonical order until cond() is false, no
// events remain, or a failure is recorded — the exact per-event stopping
// a sequential engine gives, so Go-side harness checks interleave
// identically.
func (c *Cluster) RunWhile(cond func() bool) bool {
	for cond() {
		if c.Failed() != nil {
			return false
		}
		if !c.Step() {
			return false
		}
	}
	return true
}

// RunUntil fires events with timestamps <= t in canonical order, then
// sets every engine's clock to t.
func (c *Cluster) RunUntil(t Time) {
	for {
		next := c.nextTime()
		if next > t {
			break
		}
		c.stepBounded(t)
	}
	c.hub.AdvanceTo(t)
	for _, e := range c.parts {
		e.AdvanceTo(t)
	}
}

// RunFor advances the cluster by d, firing all events in the window.
func (c *Cluster) RunFor(d Time) { c.RunUntil(c.Now() + d) }

// DrainBudget runs the cluster until quiescent, or until limit events
// have fired, returning an error wrapping ErrBudget in that case. A
// recorded failure stops the drain and is returned (the canonically-
// first one across partitions). Parallel rounds drive the drain unless
// Sequential is set.
func (c *Cluster) DrainBudget(limit uint64) error {
	if err := c.Failed(); err != nil {
		return err
	}
	start := c.Fired()
	if c.Sequential {
		for c.Step() {
			if err := c.Failed(); err != nil {
				return err
			}
			if c.Fired()-start > limit {
				return fmt.Errorf("%w (limit %d, %d still pending)", ErrBudget, limit, c.Pending())
			}
		}
		return nil
	}
	for c.round() {
		if err := c.Failed(); err != nil {
			return err
		}
		if c.Fired()-start > limit {
			return fmt.Errorf("%w (limit %d, %d still pending)", ErrBudget, limit, c.Pending())
		}
	}
	return nil
}

// Cluster partitions one simulation across several Engines and replays
// their interactions in a canonical order, so a machine split over
// multiple cores produces bit-identical results to a sequential run —
// by construction, not by luck.
//
// # Model
//
// The machine's sequential units are domains (see Domain): each node is
// one domain, and the shared mesh fabric is the hub domain. A Cluster
// owns P partition engines (each holding the events of a disjoint set of
// node domains) plus one hub engine (holding the fabric's events). Node
// events may touch only their own node's state; the only cross-domain
// traffic is
//
//   - posts (node → hub): packet injections, FIFO credits, crash
//     notifications — buffered per partition during a node phase and
//     replayed onto the hub engine sorted by (time, domain, creation
//     order), which is exactly the order a single engine with the
//     (at, dom, seq) key would have fired them in;
//   - messages (hub → node): packet deliveries and injector-free
//     callbacks — recorded in hub execution order and run sequentially
//     by the coordinator, which is exactly where a single engine would
//     have run them inline.
//
// Both directions carry typed records (Post.Kind / Msg.Kind with
// preextracted arguments) dispatched through the Dispatcher installed by
// the machine glue, so the steady-state rendezvous allocates nothing:
// no closure per post, no closure per delivery, and the hub-side replay
// events come from a free list. Kind 0 falls back to a plain func() for
// harness code and tests.
//
// # Conservative lookahead
//
// The rendezvous is a bounded-horizon barrier (conservative PDES in the
// Chandy–Misra–Bryant tradition). Each round computes
//
//	T = min next event over all engines
//	W_j = min(hub's next event,
//	          relFloor + lookahead,
//	          min_i injFloor_i + pairLook[i][j],
//	          pacer deadline)
//
// per partition j, where injFloor_i lower-bounds the earliest future
// packet injection partition i can make (the NICs' pipeline floors),
// relFloor lower-bounds the earliest FIFO release anywhere, and
// pairLook[i][j] is the minimum inject→consequence latency from any
// node of partition i to any node of partition j through the mesh (hop
// distance between the partitions' node sets; see SetPairLookahead).
// The floors are cached per partition and recomputed by the worker that
// just ran the partition's phase — or lazily when a delivered message
// dirties a partition — instead of rescanning every NIC every round.
// If min_j W_j > T the round is a window: every partition runs its node
// phase to its own W_j in parallel, then the hub drains to min_j W_j;
// no message can land inside the window, which the coordinator asserts.
// Otherwise the round is a tick: partitions fire only events at exactly
// T (run bound pinned to T, the same yield a sequential engine with a
// pending event at T takes), the hub drains T, and messages are run —
// repeating until the instant is exhausted.
//
// Without a per-partition probe (SetProbe instead of SetPartProbes) the
// edge collapses to the uniform probe() + lookahead of PR 7, which
// remains the path for bare sim-level clusters.
//
// Parallelism is a persistent worker gang (see gang.go): one goroutine
// per partition beyond the first, alive for the Cluster's lifetime,
// driven by an atomic epoch barrier that spins briefly and then parks.
// A round costs two atomic phases instead of P goroutine spawns.
// Partition state needs no locks because partitions are disjoint and
// the hub/message phases run only while node phases are quiescent (the
// barrier's atomics provide the happens-before edges).
//
// # Exact single-step mode
//
// Step, RunWhile, RunUntil and RunFor do not use rounds: they fire one
// event at a time in the canonical global order (smallest (at, dom)
// head across engines; the hub wins ties because a pending post was
// created by an already-fired event), with the stepped engine's run
// bound set so run-ahead components (the batched CPU) see exactly the
// horizon a single shared heap would have shown them. Post replays and
// the messages they produce drain inside the Step that fired the
// originating event — sequentially those calls ran inside the event
// itself — so the number and position of Step boundaries match the
// sequential engine exactly, and harness code that interleaves Go-side
// checks between events (futures, stall loops) behaves identically to
// the sequential engine, event for event. Setting Sequential forces
// drains onto this path too, which is
// the A/B reference the differential tests compare the parallel rounds
// against.
package sim

import (
	"fmt"
	"time"
)

// PostFunc is the Post/Msg kind that carries a plain func() instead of a
// typed record — the cold-path and test fallback.
const PostFunc uint8 = 0

// Post is one node→hub action, replayed on the hub engine at time At in
// domain Dom (the posting node's domain, so replay order matches the
// sequential interleaving). Kind selects the fabric call and A/B/U/Ptr
// carry its preextracted arguments, decoded by the Dispatcher; Kind
// PostFunc runs Fn instead.
type Post struct {
	At   Time
	Dom  Domain
	Kind uint8
	A, B int64
	U    uint64
	Ptr  any
	Fn   func()
}

// Msg is one hub→node action (a packet delivery or injector-free
// callback), decoded by the Dispatcher; Kind PostFunc runs Fn.
type Msg struct {
	Kind uint8
	A, B int64
	Ptr  any
	Fn   func()
}

// Dispatcher decodes typed posts and messages into machine calls. The
// core glue installs one; clusters without a dispatcher may only carry
// PostFunc records.
type Dispatcher interface {
	ApplyPost(Post)
	ApplyMsg(Msg)
}

// deferred is one hub→node message, run after the hub phase that
// produced it under the domain the hub event chain carried.
type deferred struct {
	part int
	at   Time
	dom  Domain
	m    Msg
}

// postEvent is a pooled hub-engine event that applies one replayed post.
// The free list is coordinator-only state (replays are scheduled and
// fired between node phases), so it needs no lock.
type postEvent struct {
	c    *Cluster
	p    Post
	next *postEvent
}

func (ev *postEvent) Fire() {
	c, p := ev.c, ev.p
	ev.p = Post{}
	ev.next = c.freeEv
	c.freeEv = ev
	if p.Kind == PostFunc {
		p.Fn()
	} else {
		c.disp.ApplyPost(p)
	}
}

// Cluster runs one machine partitioned across several engines.
type Cluster struct {
	parts []*Engine
	hub   *Engine
	look  Time // minimum release→node-consequence latency (mesh flit time)
	probe func() Time
	disp  Dispatcher

	// Adaptive per-partition lookahead (SetPartProbes/SetPairLookahead).
	partProbe func(part int) (inj, rel Time)
	pairLook  [][]Time // [from][to] inject→consequence floor; nil → uniform
	injProbe  []Time   // cached per-partition injection floors
	relProbe  []Time   // cached per-partition release floors
	dirty     []bool   // partition probe caches needing recomputation
	edges     []Time   // per-partition window edges for the current round

	posts  [][]Post // per-partition post buffers (only owner appends)
	heads  []int    // k-way merge cursors into posts
	msgs   []deferred
	freeEv *postEvent

	// Sequential forces DrainBudget onto the exact single-step path
	// (differential testing); Step/RunWhile/RunUntil always use it.
	Sequential bool

	// Parallel disables the worker gang when false (set for
	// single-partition clusters); rounds still run, inline.
	parallel bool

	// gang holds the persistent node-phase workers, started lazily on
	// the first parallel round and kept across Reset; Close stops it.
	gang     *gang
	gangIdle time.Duration // park timeout before a worker self-reaps

	// pacer, when non-nil, observes the canonical global event order at
	// its deadlines (see pacer.go). The coordinator paces before rounds
	// and exact steps and caps windowed rounds at the next deadline, so
	// the cut matches a sequential engine's exactly.
	pacer Pacer
}

// NewCluster builds a cluster over the given partition engines and the
// hub engine. look is the conservative lookahead: the minimum simulated
// delay between a node→hub post and any node-visible consequence.
func NewCluster(parts []*Engine, hub *Engine, look Time) *Cluster {
	if look <= 0 {
		panic("sim: cluster lookahead must be positive")
	}
	c := &Cluster{
		parts:    parts,
		hub:      hub,
		look:     look,
		posts:    make([][]Post, len(parts)),
		heads:    make([]int, len(parts)),
		injProbe: make([]Time, len(parts)),
		relProbe: make([]Time, len(parts)),
		dirty:    make([]bool, len(parts)),
		edges:    make([]Time, len(parts)),
		parallel: len(parts) > 1,
		gangIdle: 250 * time.Millisecond,
	}
	c.markDirty()
	return c
}

// SetProbe installs the uniform lookahead probe: a lower bound on the
// earliest simulated time any partition could make its next post. It is
// called only between phases (never concurrently with node phases).
// SetPartProbes supersedes it when installed.
func (c *Cluster) SetProbe(f func() Time) { c.probe = f }

// SetPartProbes installs the per-partition probe: lower bounds on the
// earliest future packet injection (inj) and FIFO release (rel) the
// partition's nodes can post. Results are cached; the cache for a
// partition is refreshed by the worker that finishes its node phase and
// invalidated when a message is delivered to it.
func (c *Cluster) SetPartProbes(f func(part int) (inj, rel Time)) {
	c.partProbe = f
	c.markDirty()
}

// SetPairLookahead installs the partition-pair lookahead table:
// table[i][j] lower-bounds the simulated delay between a packet
// injection by partition i and any consequence visible to partition j
// (derived from the mesh hop distance between the partitions' node
// sets). The table must be square with one row per partition.
func (c *Cluster) SetPairLookahead(table [][]Time) {
	if len(table) != len(c.parts) {
		panic("sim: pair lookahead table must have one row per partition")
	}
	for _, row := range table {
		if len(row) != len(c.parts) {
			panic("sim: pair lookahead table must be square")
		}
	}
	c.pairLook = table
}

// SetDispatch installs the typed post/message decoder.
func (c *Cluster) SetDispatch(d Dispatcher) { c.disp = d }

// Parts returns the partition engines (for per-component wiring).
func (c *Cluster) Parts() []*Engine { return c.parts }

// Hub returns the hub engine.
func (c *Cluster) Hub() *Engine { return c.hub }

// PostTo buffers a node→hub action from partition part. Only events
// running on partition part's engine may call it (each partition appends
// to its own buffer, so node phases need no locks).
func (c *Cluster) PostTo(part int, p Post) {
	c.posts[part] = append(c.posts[part], p)
}

// DeferMsg records a hub→node message for partition part at the hub's
// current time and domain; the coordinator runs it after the hub phase.
// Only hub events may call it.
func (c *Cluster) DeferMsg(part int, m Msg) {
	c.msgs = append(c.msgs, deferred{part: part, at: c.hub.Now(), dom: c.hub.Domain(), m: m})
}

// Defer records a plain-func message (see DeferMsg).
func (c *Cluster) Defer(part int, fn func()) { c.DeferMsg(part, Msg{Fn: fn}) }

// Close stops the persistent worker gang, if one was started. The
// cluster remains usable — the next parallel round starts a fresh gang —
// so Close is safe to call at any quiescent point. Idle workers also
// self-reap after gangIdle, so an abandoned Cluster does not leak
// goroutines forever even without Close.
func (c *Cluster) Close() {
	if c.gang != nil {
		c.gang.stop()
		c.gang = nil
	}
}

// Now returns the cluster's observable time: the furthest any engine
// has advanced.
func (c *Cluster) Now() Time {
	t := c.hub.Now()
	for _, e := range c.parts {
		if n := e.Now(); n > t {
			t = n
		}
	}
	return t
}

// Fired returns the total events executed across all engines.
func (c *Cluster) Fired() uint64 {
	n := c.hub.Fired()
	for _, e := range c.parts {
		n += e.Fired()
	}
	return n
}

// Pending returns the total events waiting across all engines.
func (c *Cluster) Pending() int {
	n := c.hub.Pending() + len(c.msgs)
	for i, e := range c.parts {
		n += e.Pending() + len(c.posts[i])
	}
	return n
}

// MaxPending returns the deepest any single engine's queue has been.
func (c *Cluster) MaxPending() int {
	n := c.hub.MaxPending()
	for _, e := range c.parts {
		if m := e.MaxPending(); m > n {
			n = m
		}
	}
	return n
}

// Failed returns the canonically-first failure across all engines: the
// one with the smallest (time, domain) stamp, which is the failure a
// sequential run would have surfaced. Nil when no engine failed.
func (c *Cluster) Failed() error {
	var err error
	var at Time
	var dom Domain
	consider := func(e *Engine) {
		if e.failure == nil {
			return
		}
		fa, fd := e.FailedAt()
		if err == nil || fa < at || (fa == at && fd < dom) {
			err, at, dom = e.failure, fa, fd
		}
	}
	consider(c.hub)
	for _, e := range c.parts {
		consider(e)
	}
	return err
}

// Fail records a failure on the hub engine (harness-level aborts).
func (c *Cluster) Fail(err error) { c.hub.Fail(err) }

// Reset returns every engine to time zero and discards buffered posts
// and messages. The worker gang, if started, survives — it holds wiring,
// not simulated state — so a reused Machine pays the spawn cost once.
func (c *Cluster) Reset() {
	c.hub.Reset()
	for _, e := range c.parts {
		e.Reset()
	}
	for i := range c.posts {
		clear(c.posts[i])
		c.posts[i] = c.posts[i][:0]
		c.heads[i] = 0
	}
	clear(c.msgs)
	c.msgs = c.msgs[:0]
	c.markDirty()
}

// markDirty invalidates every partition's cached probe floors.
func (c *Cluster) markDirty() {
	for i := range c.dirty {
		c.dirty[i] = true
	}
}

// nextTime returns the earliest pending event time across all engines.
func (c *Cluster) nextTime() Time {
	t := c.hub.NextEventAt()
	for _, e := range c.parts {
		if n := e.NextEventAt(); n < t {
			t = n
		}
	}
	return t
}

// schedulePost schedules one replayed post on the hub heap through the
// pooled event free list — no allocation in steady state.
func (c *Cluster) schedulePost(p Post) {
	ev := c.freeEv
	if ev == nil {
		ev = &postEvent{c: c}
	} else {
		c.freeEv = ev.next
		ev.next = nil
	}
	ev.p = p
	c.hub.ScheduleDom(p.Dom, p.At, ev)
}

// flushPosts replays buffered posts onto the hub engine in canonical
// order: (time, domain) sorted, creation order within a domain. Each
// partition's buffer is already in that order on its own — an engine
// fires events in nondecreasing (at, dom) order and one domain never
// spans partitions — so the replay is an allocation-free k-way merge
// over the per-partition buffers (lowest partition index wins exact
// (time, domain) ties, matching what a stable sort of the concatenated
// buffers produced). The hub heap's (at, dom, seq) key then interleaves
// the replays with fabric events exactly as a single shared heap would.
func (c *Cluster) flushPosts() {
	total := 0
	for i := range c.posts {
		total += len(c.posts[i])
	}
	for n := 0; n < total; n++ {
		best := -1
		var ba Time
		var bd Domain
		for i := range c.posts {
			h := c.heads[i]
			if h >= len(c.posts[i]) {
				continue
			}
			p := &c.posts[i][h]
			if best < 0 || p.At < ba || (p.At == ba && p.Dom < bd) {
				best, ba, bd = i, p.At, p.Dom
			}
		}
		c.schedulePost(c.posts[best][c.heads[best]])
		c.heads[best]++
	}
	for i := range c.posts {
		clear(c.posts[i])
		c.posts[i] = c.posts[i][:0]
		c.heads[i] = 0
	}
}

// applyMsg runs one decoded hub→node message body.
func (c *Cluster) applyMsg(m Msg) {
	if m.Kind == PostFunc {
		m.Fn()
	} else {
		c.disp.ApplyMsg(m)
	}
}

// flushMsgs runs buffered hub→node messages in hub execution order,
// advancing the target partition's clock to the message time first (safe:
// nothing earlier can be pending, the message time is the current global
// instant) and entering the domain the hub chain carried. Each delivery
// dirties its partition's probe cache — a delivered packet can start the
// deposit pipeline, lowering the release floor.
func (c *Cluster) flushMsgs() {
	for i := 0; i < len(c.msgs); i++ {
		d := c.msgs[i]
		e := c.parts[d.part]
		e.AdvanceTo(d.at)
		prev := e.EnterDomain(d.dom)
		c.applyMsg(d.m)
		e.EnterDomain(prev)
		c.dirty[d.part] = true
	}
	clear(c.msgs)
	c.msgs = c.msgs[:0]
}

// runPhase executes one partition's node phase — runWindow to its own
// edge or runAt the tick instant — then refreshes the partition's probe
// cache in place. It runs on the owning gang worker (or the coordinator
// for partition 0 and inline phases), which parallelizes the NIC floor
// scan that a single coordinator used to pay for every round.
func (c *Cluster) runPhase(i int, op uint32, tickT Time) {
	e := c.parts[i]
	if op == opWindow {
		e.runWindow(c.edges[i])
	} else {
		e.runAt(tickT)
	}
	if c.partProbe != nil {
		c.injProbe[i], c.relProbe[i] = c.partProbe(i)
		c.dirty[i] = false
	}
}

// nodePhase runs one phase over every partition engine — through the
// persistent gang when the cluster is parallel (the coordinator takes
// partition 0 itself), inline otherwise.
func (c *Cluster) nodePhase(op uint32, tickT Time) {
	if !c.parallel {
		for i := range c.parts {
			c.runPhase(i, op, tickT)
		}
		return
	}
	if c.gang == nil {
		c.gang = newGang(c)
	}
	e := c.gang.dispatch(op, tickT)
	c.runPhase(0, op, tickT)
	c.gang.waitDone(e)
}

// satAdd is a Forever-saturating Time addition.
func satAdd(a, b Time) Time {
	if a > Forever-b {
		return Forever
	}
	return a + b
}

// windowEdges computes each partition's horizon W_j for a round starting
// at global time T and returns the minimum; events strictly before W_j
// can fire on partition j without rendezvous. min > T selects a windowed
// round; min == T a tick round. Probe floors are clamped at T (a cached
// floor may lag; posts can never be scheduled in the past).
func (c *Cluster) windowEdges(T Time) Time {
	hubNext := c.hub.NextEventAt()
	deadline := Forever
	if c.pacer != nil {
		// Never fire an event at/after a pending observation deadline:
		// end the window there so the pacer sees the exact cut.
		deadline = c.pacer.NextDeadline()
	}
	if c.partProbe == nil || c.pairLook == nil {
		// Uniform mode: one probe, one lookahead, one shared edge.
		w := hubNext
		p := Forever
		if c.probe != nil {
			p = c.probe()
		}
		if p < T {
			p = T
		}
		if edge := satAdd(p, c.look); edge < w {
			w = edge
		}
		if deadline < w {
			w = deadline
		}
		for i := range c.edges {
			c.edges[i] = w
		}
		return w
	}
	for i := range c.parts {
		if c.dirty[i] {
			c.injProbe[i], c.relProbe[i] = c.partProbe(i)
			c.dirty[i] = false
		}
	}
	// FIFO releases unblock parked worms anywhere in the mesh, so their
	// floor stays global: consequence >= earliest release + one flit.
	rel := Forever
	for i := range c.parts {
		r := c.relProbe[i]
		if r < T {
			r = T
		}
		if r < rel {
			rel = r
		}
	}
	relEdge := satAdd(rel, c.look)
	wmin := Forever
	for j := range c.parts {
		w := hubNext
		if relEdge < w {
			w = relEdge
		}
		for i := range c.parts {
			p := c.injProbe[i]
			if p < T {
				p = T
			}
			if edge := satAdd(p, c.pairLook[i][j]); edge < w {
				w = edge
			}
		}
		if deadline < w {
			w = deadline
		}
		c.edges[j] = w
		if w < wmin {
			wmin = w
		}
	}
	return wmin
}

// round executes one rendezvous round; it reports false when no events
// remain anywhere.
func (c *Cluster) round() bool {
	T := c.nextTime()
	if T == Forever {
		return false
	}
	if c.pacer != nil {
		pace(c.pacer, T)
	}
	if w := c.windowEdges(T); w > T {
		c.windowRound(w)
	} else {
		c.tickRound(T)
	}
	return true
}

// windowRound fires every node event strictly before its partition's
// edge in parallel, then drains the hub to the minimum edge. The
// lookahead bounds guarantee the hub cannot produce node-side work
// inside any partition's window.
func (c *Cluster) windowRound(wmin Time) {
	c.nodePhase(opWindow, 0)
	c.flushPosts()
	for {
		at, _, ok := c.hub.headKey()
		if !ok || at >= wmin || c.hub.failure != nil {
			break
		}
		c.hub.Step()
	}
	if len(c.msgs) != 0 {
		panic(fmt.Sprintf("sim: cluster lookahead violated: %d message(s) produced inside window ending %v", len(c.msgs), wmin))
	}
}

// tickRound exhausts the single instant T: node phases at exactly T,
// post replay, hub drain to T, then messages — repeated until nothing at
// T remains. Messages at T may wake node events at T (interrupt
// delivery, thaw), hence the loop.
func (c *Cluster) tickRound(T Time) {
	for {
		c.nodePhase(opTick, T)
		c.flushPosts()
		for {
			at, _, ok := c.hub.headKey()
			if !ok || at > T || c.hub.failure != nil {
				break
			}
			c.hub.Step()
		}
		if len(c.msgs) > 0 {
			c.flushMsgs()
			continue
		}
		again := false
		for _, e := range c.parts {
			if at, _, ok := e.headKey(); ok && at <= T && e.failure == nil {
				again = true
				break
			}
		}
		if !again {
			return
		}
	}
}

// pick returns the engine holding the canonically-earliest pending event
// (nil when all queues are empty). The hub wins (at, dom) ties: a post
// pending there was created by a node event that already fired, so it
// precedes any still-pending node event with the same key.
func (c *Cluster) pick() *Engine {
	best := c.hub
	at, dom, ok := c.hub.headKey()
	if !ok {
		best = nil
		at = Forever
	}
	for _, e := range c.parts {
		ea, ed, eok := e.headKey()
		if !eok {
			continue
		}
		if best == nil || ea < at || (ea == at && ed < dom) {
			best, at, dom = e, ea, ed
		}
	}
	return best
}

// postCount reports how many node→hub posts are buffered.
func (c *Cluster) postCount() int {
	n := 0
	for i := range c.posts {
		n += len(c.posts[i])
	}
	return n
}

// stepOn fires one event on e with e's run bound set to limit, so
// run-ahead components yield exactly where a single shared heap would
// have made them yield. Post replays and the hub→node messages they
// produce drain within the same step: a sequential machine ran those
// calls synchronously inside the event that just fired, so they must
// not surface as extra Step() boundaries — harness polling loops that
// act once per Step would otherwise interleave differently (and, e.g.,
// issue extra bus transactions) than against a single engine.
func (c *Cluster) stepOn(e *Engine, limit Time) {
	fire := func(eng *Engine) {
		prevBound, prevBounded := eng.bound, eng.bounded
		eng.bound, eng.bounded = limit, true
		eng.Step()
		eng.bound, eng.bounded = prevBound, prevBounded
	}
	fire(e)
	if e == c.hub {
		c.flushMsgs()
	}
	for c.postCount() > 0 {
		n := c.postCount()
		c.flushPosts()
		// The replays sit at the hub's head: every other hub event keys
		// strictly after the fired event (pick gave the hub the tie),
		// while the replays key equal to it.
		for i := 0; i < n; i++ {
			fire(c.hub)
			c.flushMsgs()
		}
	}
}

// stepBounded fires the canonically-next event with the caller's bound
// folded in; it reports false when no events remain.
func (c *Cluster) stepBounded(callerBound Time) bool {
	e := c.pick()
	if e == nil {
		return false
	}
	if c.pacer != nil {
		pace(c.pacer, c.nextTime())
	}
	// The stepped engine must treat other engines' next events the way a
	// shared heap would: a run-ahead component may advance strictly up to
	// (never onto) them. RunBound is an inclusive edge, hence the -1.
	limit := callerBound
	consider := func(o *Engine) {
		if o == e {
			return
		}
		if n := o.NextEventAt(); n != Forever && n-1 < limit {
			limit = n - 1
		}
	}
	consider(c.hub)
	for _, o := range c.parts {
		consider(o)
	}
	c.stepOn(e, limit)
	// Exact steps bypass the per-phase probe refresh; a later round must
	// rescan every partition.
	c.markDirty()
	return true
}

// Step fires the canonically-next event across all engines; it reports
// false if no events are pending anywhere.
func (c *Cluster) Step() bool { return c.stepBounded(Forever) }

// RunWhile fires events in canonical order until cond() is false, no
// events remain, or a failure is recorded — the exact per-event stopping
// a sequential engine gives, so Go-side harness checks interleave
// identically.
func (c *Cluster) RunWhile(cond func() bool) bool {
	for cond() {
		if c.Failed() != nil {
			return false
		}
		if !c.Step() {
			return false
		}
	}
	return true
}

// RunUntil fires events with timestamps <= t in canonical order, then
// sets every engine's clock to t.
func (c *Cluster) RunUntil(t Time) {
	for {
		next := c.nextTime()
		if next > t {
			break
		}
		c.stepBounded(t)
	}
	c.hub.AdvanceTo(t)
	for _, e := range c.parts {
		e.AdvanceTo(t)
	}
}

// RunFor advances the cluster by d, firing all events in the window.
func (c *Cluster) RunFor(d Time) { c.RunUntil(c.Now() + d) }

// DrainBudget runs the cluster until quiescent, or until limit events
// have fired, returning an error wrapping ErrBudget in that case. A
// recorded failure stops the drain and is returned (the canonically-
// first one across partitions). Parallel rounds drive the drain unless
// Sequential is set.
func (c *Cluster) DrainBudget(limit uint64) error {
	if err := c.Failed(); err != nil {
		return err
	}
	start := c.Fired()
	if c.Sequential {
		for c.Step() {
			if err := c.Failed(); err != nil {
				return err
			}
			if c.Fired()-start > limit {
				return fmt.Errorf("%w (limit %d, %d still pending)", ErrBudget, limit, c.Pending())
			}
		}
		return nil
	}
	for c.round() {
		if err := c.Failed(); err != nil {
			return err
		}
		if c.Fired()-start > limit {
			return fmt.Errorf("%w (limit %d, %d still pending)", ErrBudget, limit, c.Pending())
		}
	}
	return nil
}

package sim

import (
	"testing"
)

// recordingPacer logs every cut it is handed: the deadline, the head that
// triggered it, and a caller-supplied probe of machine state.
type recordingPacer struct {
	interval Time
	next     Time
	cuts     []cut
	probe    func() uint64
	stuck    bool // refuse to advance NextDeadline (livelock-guard test)
}

type cut struct {
	deadline, head Time
	state          uint64
}

func newRecordingPacer(interval Time, probe func() uint64) *recordingPacer {
	return &recordingPacer{interval: interval, next: interval, probe: probe}
}

func (p *recordingPacer) NextDeadline() Time { return p.next }

func (p *recordingPacer) Pace(deadline, head Time) {
	var s uint64
	if p.probe != nil {
		s = p.probe()
	}
	p.cuts = append(p.cuts, cut{deadline, head, s})
	if !p.stuck {
		p.next = deadline + p.interval
	}
}

// TestEnginePacerCut: the pacer fires exactly when the next pending event
// first reaches a deadline — every event strictly before D has fired,
// nothing at or after D has.
func TestEnginePacerCut(t *testing.T) {
	e := NewEngine()
	fired := uint64(0)
	for _, at := range []Time{5, 15, 25} {
		e.At(at, func() { fired++ })
	}
	p := newRecordingPacer(10, func() uint64 { return fired })
	e.SetPacer(p)
	e.Run()
	// Head 5 triggers nothing (5 < 10); head 15 triggers D=10 with one
	// event fired; head 25 triggers D=20 with two. After the queue
	// empties, pacing stops — a pacer is driven by events, not wall time.
	want := []cut{{10, 15, 1}, {20, 25, 2}}
	if len(p.cuts) != len(want) {
		t.Fatalf("cuts %+v, want %+v", p.cuts, want)
	}
	for i := range want {
		if p.cuts[i] != want[i] {
			t.Fatalf("cut %d = %+v, want %+v", i, p.cuts[i], want[i])
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d", fired)
	}
}

// TestEnginePacerQuietGap: a long event gap yields one flat sample per
// interval — the pace loop fires every deadline <= head in one cut.
func TestEnginePacerQuietGap(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.At(100, func() {})
	p := newRecordingPacer(10, nil)
	e.SetPacer(p)
	e.Run()
	if len(p.cuts) != 10 {
		t.Fatalf("%d cuts, want 10 (deadlines 10..100)", len(p.cuts))
	}
	for i, c := range p.cuts {
		if c.deadline != Time(10*(i+1)) || c.head != 100 {
			t.Fatalf("cut %d = %+v", i, c)
		}
	}
}

// TestEnginePacerDoesNotPerturb: an armed pacer changes nothing the
// simulation can observe — clock, fired count, event order.
func TestEnginePacerDoesNotPerturb(t *testing.T) {
	run := func(p Pacer) ([]firing, uint64, Time) {
		e := NewEngine()
		if p != nil {
			e.SetPacer(p)
		}
		log := driveRandomWorkload(newEngineAdapter{e}, 42)
		return log, e.Fired(), e.Now()
	}
	plain, pf, pn := run(nil)
	paced, qf, qn := run(newRecordingPacer(7, nil))
	if pf != qf || pn != qn || len(plain) != len(paced) {
		t.Fatalf("paced run diverged: fired %d/%d now %v/%v len %d/%d",
			pf, qf, pn, qn, len(plain), len(paced))
	}
	for i := range plain {
		if plain[i] != paced[i] {
			t.Fatalf("firing %d diverged: %+v vs %+v", i, plain[i], paced[i])
		}
	}
}

// TestEnginePacerLivelockGuard: a pacer that refuses to advance its
// deadline gets exactly one Pace per cut instead of hanging the engine.
func TestEnginePacerLivelockGuard(t *testing.T) {
	e := NewEngine()
	for _, at := range []Time{5, 15, 25} {
		e.At(at, func() {})
	}
	p := newRecordingPacer(10, nil)
	p.stuck = true
	e.SetPacer(p)
	e.Run() // must terminate
	// One bail-out call per cut where the deadline was due (heads 15, 25).
	if len(p.cuts) != 2 {
		t.Fatalf("%d cuts, want 2", len(p.cuts))
	}
	for _, c := range p.cuts {
		if c.deadline != 10 {
			t.Fatalf("stuck pacer advanced: %+v", c)
		}
	}
}

// TestClusterPacerCut: the coordinator paces the canonical global order —
// windowed rounds end at deadlines, so a cut never sees an event at or
// after its deadline fired, across all partitions.
func TestClusterPacerCut(t *testing.T) {
	for _, mode := range []string{"rounds", "steps"} {
		parts := []*Engine{NewEngine(), NewEngine()}
		hub := NewEngine()
		// Distinct domains per engine, as core wiring guarantees.
		parts[0].EnterDomain(DomNode(0))
		parts[1].EnterDomain(DomNode(1))
		hub.EnterDomain(DomHub)
		c := NewCluster(parts, hub, 10)

		var fired0, fired1 []Time
		for _, at := range []Time{3, 13, 23, 33} {
			at := at
			parts[0].At(at, func() { fired0 = append(fired0, at) })
		}
		for _, at := range []Time{7, 17, 27, 37} {
			at := at
			parts[1].At(at, func() { fired1 = append(fired1, at) })
		}
		total := func() uint64 { return uint64(len(fired0) + len(fired1)) }
		p := newRecordingPacer(10, total)
		c.SetPacer(p)
		if mode == "rounds" {
			if err := c.DrainBudget(1000); err != nil {
				t.Fatal(err)
			}
		} else {
			for c.Step() {
			}
		}

		// Eight events at 3,7,13,17,23,27,33,37; deadlines 10,20,30 cut
		// after 2, 4, 6 events. (Deadline 40 never becomes due: no event
		// at/after it remains to trigger the cut.)
		want := []cut{{10, 0, 2}, {20, 0, 4}, {30, 0, 6}}
		if len(p.cuts) != len(want) {
			t.Fatalf("%s: cuts %+v", mode, p.cuts)
		}
		for i := range want {
			got := p.cuts[i]
			if got.deadline != want[i].deadline || got.state != want[i].state {
				t.Fatalf("%s: cut %d = %+v, want deadline %v state %d",
					mode, i, got, want[i].deadline, want[i].state)
			}
			if got.head < got.deadline {
				t.Fatalf("%s: cut %d head %v precedes deadline %v", mode, i, got.head, got.deadline)
			}
		}
		fired := total()
		if fired != 8 {
			t.Fatalf("%s: fired %d events", mode, fired)
		}
	}
}

package sim

import "testing"

// Horizon is the yield point for synchronous run-ahead (spin
// fast-forward, CPU batching) and, in the partitioned machine, the
// basis of the lookahead argument — a component that consumes time past
// it would fire over a pending event or escape the caller's run window.
// These tests pin its edge cases directly.

func TestHorizonEmptyQueue(t *testing.T) {
	e := NewEngine()
	if h := e.Horizon(); h != Forever {
		t.Fatalf("empty queue: Horizon() = %v, want Forever", h)
	}
	// An empty queue inside a bounded run yields the window edge.
	done := false
	e.At(5*Microsecond, func() {
		if h := e.Horizon(); h != 8*Microsecond {
			t.Errorf("bounded empty queue: Horizon() = %v, want 8us", h)
		}
		done = true
	})
	e.RunUntil(8 * Microsecond)
	if !done {
		t.Fatal("event did not fire")
	}
	if h := e.Horizon(); h != Forever {
		t.Fatalf("after bounded run: Horizon() = %v, want Forever", h)
	}
}

func TestHorizonEventAtNow(t *testing.T) {
	e := NewEngine()
	e.At(3*Microsecond, func() {})
	e.RunUntil(3 * Microsecond)
	if e.Now() != 3*Microsecond {
		t.Fatalf("Now() = %v, want 3us", e.Now())
	}
	// A pending event at exactly now: the horizon is now itself — zero
	// run-ahead allowance, not a negative or wrapped window.
	e.At(e.Now(), func() {})
	if h := e.Horizon(); h != e.Now() {
		t.Fatalf("event at now: Horizon() = %v, want %v", h, e.Now())
	}
}

func TestHorizonRunBoundInteraction(t *testing.T) {
	e := NewEngine()
	e.At(10*Microsecond, func() {}) // pending beyond every probe below
	var got []Time
	e.At(1*Microsecond, func() { got = append(got, e.Horizon()) })
	e.RunUntil(4 * Microsecond) // bound (4us) below next event (10us)
	e.RunUntil(20 * Microsecond)
	// Outside any window the queue is empty again.
	if h := e.Horizon(); h != Forever {
		t.Fatalf("after runs: Horizon() = %v, want Forever", h)
	}
	if len(got) != 1 || got[0] != 4*Microsecond {
		t.Fatalf("bounded probe = %v, want [4us]", got)
	}

	// The symmetric case: next event (2us) below the bound (30us).
	e2 := NewEngine()
	e2.At(2*Microsecond, func() {})
	var h2 Time
	e2.At(1*Microsecond, func() { h2 = e2.Horizon() })
	e2.RunUntil(30 * Microsecond)
	if h2 != 2*Microsecond {
		t.Fatalf("event-limited probe = %v, want 2us", h2)
	}
}

package sim

import (
	"runtime"
	"sync/atomic"
	"time"
)

// The persistent worker gang: one goroutine per partition beyond the
// first, alive across rounds (and across Machine.Reset), driven by an
// atomic epoch barrier. The coordinator publishes the phase (op, tick
// instant, per-partition window edges — all plain fields written before
// the epoch bump, read after the epoch load; sequentially consistent
// atomics give the happens-before edges) and bumps the epoch; each
// worker spins briefly on the epoch, then parks on a channel. A round
// therefore costs two atomic phases — dispatch and join — instead of P
// goroutine spawns and a WaitGroup.
//
// Lifecycle: workers are spawned lazily by the first parallel round,
// stopped by Cluster.Close (opExit), and self-reap after sitting parked
// for gangIdle — an abandoned Cluster (a benchmark harness dropping a
// Machine between partition counts) stops costing goroutines without a
// finalizer. The dispatcher respawns reaped workers on the next round,
// so reaping is invisible apart from a one-off spawn cost.

// Phase opcodes, published in gang.op (and consumed by Cluster.runPhase).
const (
	opWindow uint32 = iota + 1 // runWindow(edges[i])
	opTick                     // runAt(tickT)
	opExit                     // terminate the worker
)

// Worker states for the park/reap handshake.
const (
	wRun    int32 = iota // processing or spinning on the epoch
	wParked              // blocked on park (or about to be)
	wDead                // self-reaped after an idle timeout
)

type gangWorker struct {
	state atomic.Int32
	done  atomic.Uint64 // last epoch fully processed
	park  chan struct{} // wake token, capacity 1
	timer *time.Timer
	_     [64]byte // keep hot done/state words off shared cache lines
}

type gang struct {
	c     *Cluster
	epoch atomic.Uint64
	op    uint32 // published by the epoch bump
	tickT Time   // published by the epoch bump

	coordParked atomic.Bool
	coordPark   chan struct{}

	spin    int // epoch spin budget before parking (0 on 1-CPU hosts)
	idle    time.Duration
	workers []gangWorker // index 0 unused: the coordinator runs partition 0
}

func newGang(c *Cluster) *gang {
	g := &gang{
		c:         c,
		coordPark: make(chan struct{}, 1),
		idle:      c.gangIdle,
		workers:   make([]gangWorker, len(c.parts)),
	}
	if runtime.GOMAXPROCS(0) > 1 {
		g.spin = 4096
	}
	for i := 1; i < len(g.workers); i++ {
		w := &g.workers[i]
		w.park = make(chan struct{}, 1)
		w.timer = time.NewTimer(g.idle)
		if !w.timer.Stop() {
			<-w.timer.C
		}
		go g.work(i, g.epoch.Load())
	}
	return g
}

// dispatch publishes one phase and wakes (or respawns) every worker,
// returning the new epoch. Only the coordinator calls it, strictly
// alternating with waitDone.
func (g *gang) dispatch(op uint32, tickT Time) uint64 {
	g.op, g.tickT = op, tickT
	e := g.epoch.Add(1)
	for i := 1; i < len(g.workers); i++ {
		w := &g.workers[i]
		s := w.state.Load()
		if s == wParked {
			if w.state.CompareAndSwap(wParked, wRun) {
				// The park channel is empty whenever a worker is parked
				// (every token is consumed before the next park), so
				// this send cannot block.
				w.park <- struct{}{}
				continue
			}
			s = w.state.Load() // lost the claim to the idle reaper
		}
		if s == wDead {
			w.state.Store(wRun)
			w.done.Store(e - 1)
			go g.work(i, e-1)
		}
		// s == wRun: the worker is spinning and will observe the epoch.
	}
	return e
}

// waitDone joins the phase: blocks until every worker has processed
// epoch e. After dispatch, no worker can park before finishing e (the
// epoch check precedes every park), so waiting on done alone suffices.
func (g *gang) waitDone(e uint64) {
	for i := 1; i < len(g.workers); i++ {
		w := &g.workers[i]
		if w.done.Load() >= e {
			continue
		}
		for s := 0; s < g.spin; s++ {
			if w.done.Load() >= e {
				break
			}
			if s&63 == 63 {
				runtime.Gosched()
			}
		}
		for w.done.Load() < e {
			g.coordParked.Store(true)
			if w.done.Load() >= e {
				g.coordParked.Store(false)
				break
			}
			<-g.coordPark
		}
	}
}

// wake unparks the coordinator if it declared intent to park. A stale
// token (the coordinator saw done and broke without receiving) is
// consumed as a spurious wakeup by the next park loop, so the CAS plus
// capacity-1 buffer never deadlocks.
func (g *gang) wake() {
	if g.coordParked.CompareAndSwap(true, false) {
		select {
		case g.coordPark <- struct{}{}:
		default:
		}
	}
}

// stop terminates every worker (used by Cluster.Close). Respawned-dead
// and parked workers are handled by dispatch; join via waitDone since
// exiting workers publish done like any phase.
func (g *gang) stop() {
	e := g.dispatch(opExit, 0)
	g.waitDone(e)
}

// work is one worker's loop: await an epoch, run the published phase on
// partition i, publish done, repeat.
func (g *gang) work(i int, last uint64) {
	w := &g.workers[i]
	for {
		e, ok := g.await(w, last)
		if !ok {
			return // idle self-reap; dispatch respawns on demand
		}
		last = e
		if g.op == opExit {
			w.done.Store(e)
			g.wake()
			return
		}
		g.c.runPhase(i, g.op, g.tickT)
		w.done.Store(e)
		g.wake()
	}
}

// await blocks until the epoch moves past last, spinning briefly before
// parking. It returns ok=false when the worker reaped itself after
// sitting parked for the idle timeout.
func (g *gang) await(w *gangWorker, last uint64) (uint64, bool) {
	for s := 0; s < g.spin; s++ {
		if e := g.epoch.Load(); e != last {
			return e, true
		}
		if s&63 == 63 {
			runtime.Gosched()
		}
	}
	for {
		w.state.Store(wParked)
		if e := g.epoch.Load(); e != last {
			if !w.state.CompareAndSwap(wParked, wRun) {
				// The dispatcher claimed us concurrently and sent (or is
				// about to send) a token; drain it so it cannot alias a
				// future park.
				<-w.park
			}
			return e, true
		}
		w.timer.Reset(g.idle)
		select {
		case <-w.park:
			// The dispatcher set wRun before sending; loop to load the
			// new epoch.
			w.timer.Stop()
		case <-w.timer.C:
			if w.state.CompareAndSwap(wParked, wDead) {
				return 0, false
			}
			// Lost the race with a concurrent dispatch: consume its
			// token and continue.
			<-w.park
		}
	}
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// All hardware models in this repository (buses, FIFOs, routers, DMA
// engines, CPUs) advance a single shared clock owned by an Engine. Events
// scheduled for the same instant fire in scheduling order, so every run of
// a given workload is bit-for-bit reproducible.
//
// The pending-event queue is a hand-rolled 4-ary min-heap over a concrete
// event slice. Unlike container/heap, nothing crosses an interface
// boundary, so scheduling and firing allocate nothing: hot component
// models schedule pooled Handler values (see Schedule) and pay only the
// sift cost. A 4-ary layout halves the tree depth of a binary heap and
// keeps sibling keys in adjacent cache lines, which measurably helps the
// pop-heavy access pattern of a discrete-event simulator.
package sim

import (
	"errors"
	"fmt"
	"math/bits"
)

// Time is a simulated timestamp in picoseconds.
//
// Picoseconds keep bandwidth arithmetic exact: a 33 MB/s EISA burst moves
// one byte every 30303 ps, which would round badly in nanoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a timestamp later than any event a simulation will schedule.
const Forever Time = 1<<62 - 1

// Nanoseconds reports t as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a float64 microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// PerByte returns the time to move n bytes at the given bytes/second rate.
// It rounds up so that a modeled channel never beats its rated bandwidth.
//
// The product n*Second does not fit in 64 bits once n exceeds ~9.2 MB, so
// the division is carried out on the 128-bit product via math/bits.
// Results beyond the representable timestamp range clamp to Forever.
func PerByte(bytesPerSecond int64, n int) Time {
	if bytesPerSecond <= 0 || n <= 0 {
		return 0
	}
	hi, lo := bits.Mul64(uint64(n), uint64(Second))
	bps := uint64(bytesPerSecond)
	if hi >= bps {
		// Quotient would need more than 64 bits; far beyond Forever.
		return Forever
	}
	q, r := bits.Div64(hi, lo, bps)
	if r != 0 {
		q++
	}
	if q > uint64(Forever) {
		return Forever
	}
	return Time(q)
}

// Handler is a pre-allocated schedulable action. Component models on the
// simulation fast path implement it on pooled or embedded structs so that
// scheduling an event allocates nothing; converting a pointer to Handler
// never heap-allocates. One-shot or cold-path callers can keep using the
// closure-based At/After.
type Handler interface {
	Fire()
}

// Domain identifies which sequential unit of the machine an event belongs
// to: a node (its CPU, caches, buses, NIC send/deposit pipelines) or the
// shared mesh fabric. Domains are the middle component of the event key
// (at, dom, seq), so same-instant events fire node-by-node in ascending
// node order with the mesh fabric last — an order a partitioned Cluster
// can reproduce exactly without a global sequence counter, which is what
// makes parallel runs bit-identical to sequential ones by construction.
//
// Events inherit the domain of the event that scheduled them; the few
// true roots (CPU start/wake, kernel scheduler ticks, fault plan events,
// mesh entry points) tag themselves explicitly.
type Domain int32

const (
	// DomHost is the default domain: harness-level scheduling from
	// outside any event. Node domains start above it.
	DomHost Domain = 0
	// DomHub is the mesh fabric's domain; it sorts after every node so
	// that, at one instant, all node-side work (injections, credits)
	// precedes fabric arbitration — the order the partitioned Cluster's
	// rendezvous replays posts in.
	DomHub Domain = 1 << 30
)

// DomNode returns the domain of node id (node domains are 1-based so
// they never collide with DomHost).
func DomNode(id int) Domain { return Domain(id) + 1 }

// event is one pending queue entry. Exactly one of fn and h is set.
type event struct {
	at  Time
	dom Domain
	seq uint64
	fn  func()
	h   Handler
}

// before reports the firing order: time-ordered, domain-ordered within an
// instant, scheduling-ordered within a domain.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.dom != b.dom {
		return a.dom < b.dom
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulator: a clock plus a pending-event queue.
// The zero value is ready to use at time zero.
type Engine struct {
	now        Time
	seq        uint64
	cur        Domain  // domain of the event being fired; inherited by schedules
	events     []event // 4-ary min-heap on (at, dom, seq)
	fired      uint64
	maxPending int
	// bound/bounded track an active RunUntil window so synchronous
	// run-ahead components (the batched CPU interpreter) never advance
	// the clock past the window a caller asked for.
	bound   Time
	bounded bool
	// failure is the first fatal error a component raised through Fail
	// (a structured machine check). Drains stop at the event that
	// raised it and surface it instead of truncating silently.
	// failAt/failDom stamp where in (time, domain) order it was raised,
	// so a Cluster can pick the canonically-first failure across
	// partitions.
	failure error
	failAt  Time
	failDom Domain
	// pacer, when non-nil, is consulted before each event fires (see
	// pacer.go). It observes but never perturbs; Reset keeps it wired.
	pacer Pacer
}

// NewEngine returns an Engine starting at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// MaxPending returns the deepest the event queue has been since the
// engine was built or Reset: the simulation's peak concurrency.
func (e *Engine) MaxPending() int { return e.maxPending }

// Fail records a fatal component error (typically a
// *fault.MachineCheck). The first failure wins; later ones are
// discarded so the surfaced error names the root cause. Event handlers
// that raise a failure should also stop scheduling follow-up work —
// Fail does not unwind the current event.
func (e *Engine) Fail(err error) {
	if err != nil && e.failure == nil {
		e.failure = err
		e.failAt, e.failDom = e.now, e.cur
	}
}

// Failed returns the failure recorded by Fail, or nil.
func (e *Engine) Failed() error { return e.failure }

// FailedAt returns the (time, domain) stamp of the recorded failure;
// meaningful only when Failed is non-nil.
func (e *Engine) FailedAt() (Time, Domain) { return e.failAt, e.failDom }

// NextEventAt returns the timestamp of the earliest pending event, or
// Forever when the queue is empty. Synchronous run-ahead components use
// it as their hazard horizon: they may consume time inline only up to
// (not through) the next scheduled event.
func (e *Engine) NextEventAt() Time {
	if len(e.events) == 0 {
		return Forever
	}
	return e.events[0].at
}

// RunBound returns the upper edge of the active RunUntil/RunFor window,
// or Forever outside one. A run-ahead component may advance the clock to
// RunBound but no further, preserving the per-event illusion that
// nothing happens after the window a caller asked for.
func (e *Engine) RunBound() Time {
	if !e.bounded {
		return Forever
	}
	return e.bound
}

// Horizon returns the earliest instant a synchronous run-ahead
// component must yield at: the next pending event or the edge of the
// active run window, whichever comes first (Forever when neither
// constrains). Wait-state modeling (isa spin fast-forward) advances the
// clock toward, but never through, this point.
func (e *Engine) Horizon() Time {
	h := e.NextEventAt()
	if e.bounded && e.bound < h {
		h = e.bound
	}
	return h
}

// EnterDomain makes d the current scheduling domain and returns the
// previous one, so callers restore it when done:
//
//	prev := eng.EnterDomain(sim.DomHub)
//	defer eng.EnterDomain(prev)
//
// Component entry points that cross a domain boundary inline (a NIC
// injecting into the mesh, the mesh delivering to a NIC) wrap themselves
// this way so everything they schedule lands in the right domain.
func (e *Engine) EnterDomain(d Domain) Domain {
	prev := e.cur
	e.cur = d
	return prev
}

// Domain returns the current scheduling domain: the domain of the event
// being fired, or of the last EnterDomain inside it.
func (e *Engine) Domain() Domain { return e.cur }

// At schedules fn to run at absolute time t in the current domain.
// Scheduling in the past (t < Now) panics: it would silently reorder
// causality.
func (e *Engine) At(t Time, fn func()) { e.AtDom(e.cur, t, fn) }

// AtDom schedules fn to run at absolute time t in domain d.
func (e *Engine) AtDom(d Domain, t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, dom: d, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) { e.AtDom(e.cur, e.now+d, fn) }

// Schedule schedules h to fire at absolute time t in the current domain.
// It is the allocation-free twin of At: h is typically a pooled struct or
// a pointer into an existing model object. Scheduling in the past panics.
func (e *Engine) Schedule(t Time, h Handler) { e.ScheduleDom(e.cur, t, h) }

// ScheduleDom schedules h to fire at absolute time t in domain d. Event
// roots (CPU wake-ups, scheduler ticks, fault plans) use it to pin their
// domain explicitly instead of inheriting whatever fired last.
func (e *Engine) ScheduleDom(d Domain, t Time, h Handler) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, dom: d, seq: e.seq, h: h})
}

// ScheduleAfter schedules h to fire d after the current time.
func (e *Engine) ScheduleAfter(d Time, h Handler) { e.ScheduleDom(e.cur, e.now+d, h) }

// ScheduleAfterDom schedules h to fire d after the current time in domain dom.
func (e *Engine) ScheduleAfterDom(dom Domain, d Time, h Handler) {
	e.ScheduleDom(dom, e.now+d, h)
}

// push appends ev and restores the heap invariant by sifting up.
func (e *Engine) push(ev event) {
	h := append(e.events, ev)
	e.events = h
	if len(h) > e.maxPending {
		e.maxPending = len(h)
	}
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

// pop removes and returns the earliest event.
func (e *Engine) pop() event {
	h := e.events
	root := h[0]
	last := len(h) - 1
	ev := h[last]
	h[last] = event{} // drop fn/h references so fired events don't pin memory
	e.events = h[:last]
	if last > 0 {
		e.siftDown(ev)
	}
	return root
}

// siftDown places ev, displaced from the root, back into the heap.
func (e *Engine) siftDown(ev event) {
	h := e.events
	n := len(h)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if h[j].before(&h[m]) {
				m = j
			}
		}
		if !h[m].before(&ev) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ev
}

// Step fires the earliest pending event, advancing the clock to it.
// It reports false if no events are pending.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	if e.pacer != nil {
		pace(e.pacer, e.events[0].at)
	}
	ev := e.pop()
	e.now = ev.at
	e.cur = ev.dom
	e.fired++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.h.Fire()
	}
	return true
}

// headKey returns the (time, domain) key of the earliest pending event;
// ok is false when the queue is empty. The Cluster merges engines by it.
func (e *Engine) headKey() (at Time, dom Domain, ok bool) {
	if len(e.events) == 0 {
		return Forever, 0, false
	}
	return e.events[0].at, e.events[0].dom, true
}

// runWindow fires every event strictly before w, publishing w as the run
// bound so run-ahead components never advance past the window. It stops
// early on a recorded failure. The Cluster's windowed rounds use it for
// each partition's node phase.
func (e *Engine) runWindow(w Time) {
	prevBound, prevBounded := e.bound, e.bounded
	e.bound, e.bounded = w, true
	for len(e.events) > 0 && e.events[0].at < w && e.failure == nil {
		e.Step()
	}
	e.bound, e.bounded = prevBound, prevBounded
}

// runAt fires every event at exactly t with the run bound pinned to t, so
// run-ahead components execute at most one instruction past the tick —
// exactly the yield a sequential engine with a pending event at t takes.
// The Cluster's tick rounds use it for each partition's node phase.
func (e *Engine) runAt(t Time) {
	prevBound, prevBounded := e.bound, e.bounded
	e.bound, e.bounded = t, true
	for len(e.events) > 0 && e.events[0].at <= t && e.failure == nil {
		e.Step()
	}
	e.bound, e.bounded = prevBound, prevBounded
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t and then sets the clock to t.
// The window is published through RunBound while it runs (save/restore,
// so nested windows compose).
func (e *Engine) RunUntil(t Time) {
	prevBound, prevBounded := e.bound, e.bounded
	e.bound, e.bounded = t, true
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	e.bound, e.bounded = prevBound, prevBounded
	if t > e.now {
		e.now = t
	}
}

// RunFor advances the clock by d, firing all events within the window.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// RunWhile fires events until cond() is false, no events remain, or a
// component recorded a failure through Fail. It reports whether cond
// became false (as opposed to running dry or failing; callers that can
// surface errors should check Failed on a false return).
func (e *Engine) RunWhile(cond func() bool) bool {
	for cond() {
		if e.failure != nil {
			return false
		}
		if !e.Step() {
			return false
		}
	}
	return true
}

// Advance moves the clock forward by d without firing events scheduled in
// the window. It is intended for synchronous component models (such as the
// CPU interpreter) that consume time inline; they must not skip over
// pending events, so Advance panics if one exists inside the window.
func (e *Engine) Advance(d Time) {
	target := e.now + d
	if len(e.events) > 0 && e.events[0].at < target {
		panic(fmt.Sprintf("sim: Advance(%v) would skip event at %v", d, e.events[0].at))
	}
	e.now = target
}

// AdvanceTo is Advance with an absolute target. Targets in the past are a
// no-op so that callers can harmlessly re-synchronize to a busy-until mark.
func (e *Engine) AdvanceTo(t Time) {
	if t <= e.now {
		return
	}
	e.Advance(t - e.now)
}

// ErrBudget reports that a bounded drain stopped because it hit its
// event budget while work was still pending — the simulation was
// truncated, not quiescent.
var ErrBudget = errors.New("sim: event budget exhausted before quiescence")

// Drain runs events until quiescent and panics if more than limit events
// fire, guarding tests against livelocked component models. A failure
// recorded through Fail also panics here; harnesses that can surface
// machine checks gracefully use DrainBudget instead.
func (e *Engine) Drain(limit uint64) {
	if err := e.DrainBudget(limit); err != nil {
		if errors.Is(err, ErrBudget) {
			panic(fmt.Sprintf("sim: Drain exceeded %d events; component livelock?", limit))
		}
		panic(err)
	}
}

// DrainBudget runs events until quiescent, or until limit events have
// fired, in which case it stops and returns an error wrapping ErrBudget
// instead of truncating silently. A failure recorded through Fail stops
// the drain at the event that raised it and is returned as-is (a
// *fault.MachineCheck, typically). Harnesses that can surface errors
// use it in place of Drain.
func (e *Engine) DrainBudget(limit uint64) error {
	if e.failure != nil {
		return e.failure
	}
	start := e.fired
	for e.Step() {
		if e.failure != nil {
			return e.failure
		}
		if e.fired-start > limit {
			return fmt.Errorf("%w (limit %d, %d still pending)", ErrBudget, limit, len(e.events))
		}
	}
	return nil
}

// Reset returns the engine to its initial state — time zero, no pending
// events, zeroed counters — while keeping the event queue's backing
// array, so a long-lived harness can run many simulations without
// rebuilding the engine. Pending events are discarded (their Handler and
// closure references are dropped so they don't pin memory).
func (e *Engine) Reset() {
	clear(e.events)
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.cur = 0
	e.fired = 0
	e.maxPending = 0
	e.bound = 0
	e.bounded = false
	e.failure = nil
	e.failAt, e.failDom = 0, 0
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// All hardware models in this repository (buses, FIFOs, routers, DMA
// engines, CPUs) advance a single shared clock owned by an Engine. Events
// scheduled for the same instant fire in scheduling order, so every run of
// a given workload is bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp in picoseconds.
//
// Picoseconds keep bandwidth arithmetic exact: a 33 MB/s EISA burst moves
// one byte every 30303 ps, which would round badly in nanoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a timestamp later than any event a simulation will schedule.
const Forever Time = 1<<62 - 1

// Nanoseconds reports t as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a float64 microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// PerByte returns the time to move n bytes at the given bytes/second rate.
// It rounds up so that a modeled channel never beats its rated bandwidth.
func PerByte(bytesPerSecond int64, n int) Time {
	if bytesPerSecond <= 0 || n <= 0 {
		return 0
	}
	num := int64(n) * int64(Second)
	d := num / bytesPerSecond
	if num%bytesPerSecond != 0 {
		d++
	}
	return Time(d)
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Engine is a discrete-event simulator: a clock plus a pending-event queue.
// The zero value is ready to use at time zero.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an Engine starting at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step fires the earliest pending event, advancing the clock to it.
// It reports false if no events are pending.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t and then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor advances the clock by d, firing all events within the window.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// RunWhile fires events until cond() is false or no events remain.
// It reports whether cond became false (as opposed to running dry).
func (e *Engine) RunWhile(cond func() bool) bool {
	for cond() {
		if !e.Step() {
			return false
		}
	}
	return true
}

// Advance moves the clock forward by d without firing events scheduled in
// the window. It is intended for synchronous component models (such as the
// CPU interpreter) that consume time inline; they must not skip over
// pending events, so Advance panics if one exists inside the window.
func (e *Engine) Advance(d Time) {
	target := e.now + d
	if len(e.events) > 0 && e.events[0].at < target {
		panic(fmt.Sprintf("sim: Advance(%v) would skip event at %v", d, e.events[0].at))
	}
	e.now = target
}

// AdvanceTo is Advance with an absolute target. Targets in the past are a
// no-op so that callers can harmlessly re-synchronize to a busy-until mark.
func (e *Engine) AdvanceTo(t Time) {
	if t <= e.now {
		return
	}
	e.Advance(t - e.now)
}

// Drain runs events until quiescent and panics if more than limit events
// fire, guarding tests against livelocked component models.
func (e *Engine) Drain(limit uint64) {
	start := e.fired
	for e.Step() {
		if e.fired-start > limit {
			panic(fmt.Sprintf("sim: Drain exceeded %d events; component livelock?", limit))
		}
	}
}

// Pacing: deterministic simulated-time observation points that do not
// perturb the simulation.
//
// A Pacer is a passive observer with a schedule of deadlines. The engine
// (or, for a partitioned machine, the Cluster coordinator) consults it
// before firing events: when the next pending event's timestamp reaches a
// deadline D, every event strictly before D has fired and nothing at or
// after D has, so the Pacer sees the machine state exactly "at D". The
// cut is a pure function of the canonical event order — which partitioned
// runs reproduce by construction — so a paced observation is bit-identical
// across Partitions ∈ {1, N}.
//
// Crucially the Pacer is NOT an event: it never enters the pending queue,
// never advances the clock, and never changes Fired(), MaxPending() or
// quiescence. Arming one therefore changes no simulated result on a
// sequential engine. On a Cluster the coordinator additionally caps
// windowed rounds at the next deadline so the cut stays exact; that only
// moves rendezvous edges, which — like partitioning itself — perturbs
// engine bookkeeping (run-bound yields) but no simulated outcome.
package sim

// Pacer observes the simulation at deterministic simulated-time deadlines.
//
// Implementations must not schedule events, advance clocks, or otherwise
// mutate simulation state from Pace; recording a failure via Fail is the
// one sanctioned side effect (a watchdog's whole purpose). Pace runs on
// the coordinator (never inside a partition's node phase), so it may read
// any machine state without locks.
type Pacer interface {
	// NextDeadline returns the next simulated instant the pacer wants to
	// observe, or Forever when it has none.
	NextDeadline() Time

	// Pace observes the machine at deadline. head is the timestamp of the
	// earliest pending event (the instant that triggered the cut); it is
	// always >= deadline. Pace must advance NextDeadline past deadline, or
	// the engine abandons pacing for this cut to avoid livelock.
	Pace(deadline, head Time)
}

// SetPacer installs p as the engine's pacer (nil removes it). The pacer
// is wiring, not state: Reset keeps it installed. Install a pacer only on
// a free-standing engine — on a partitioned machine, install it on the
// Cluster instead, which paces the canonical global order.
func (e *Engine) SetPacer(p Pacer) { e.pacer = p }

// pace fires every pacer deadline <= head, guarding against a pacer that
// fails to advance.
func pace(p Pacer, head Time) {
	for {
		d := p.NextDeadline()
		if d > head {
			return
		}
		p.Pace(d, head)
		if nd := p.NextDeadline(); nd <= d {
			return // pacer refused to advance; bail out of this cut
		}
	}
}

// SetPacer installs p as the cluster's pacer (nil removes it). The
// coordinator consults it before every round and every exact step, and
// caps windowed rounds at the next deadline so observations cut the
// canonical event order exactly where a sequential engine would.
func (c *Cluster) SetPacer(p Pacer) { c.pacer = p }

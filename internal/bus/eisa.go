package bus

import (
	"repro/internal/phys"
	"repro/internal/sim"
)

// EISAConfig holds the expansion bus parameters.
type EISAConfig struct {
	// Setup is the DMA arbitration/setup cost paid when a burst starts
	// with the bus idle.
	Setup sim.Time
	// ChainSetup is the (much smaller) cost between back-to-back chained
	// bursts, modeling burst-mode DMA that never releases the bus.
	ChainSetup sim.Time
	// BytesPerSecond is the burst-mode bandwidth: 33 MB/s for EISA
	// (EISA Specification v3.12, cited in the paper).
	BytesPerSecond int64
}

// DefaultEISAConfig returns the prototype's EISA parameters.
func DefaultEISAConfig() EISAConfig {
	return EISAConfig{
		Setup:          1100 * sim.Nanosecond,
		ChainSetup:     100 * sim.Nanosecond,
		BytesPerSecond: 33_000_000,
	}
}

// EISAStats aggregates expansion bus activity.
type EISAStats struct {
	Bursts        uint64
	Bytes         uint64
	BusyTime      sim.Time
	SetupTime     sim.Time
	ChainedBursts uint64
}

// EISA models the expansion bus path from the prototype network interface
// to main memory. Incoming packet data crosses it via DMA; the bridge
// then masters the Xpress bus to deposit into DRAM, which lets the
// snooping caches stay consistent (paper §3: "the snooping cache
// architecture insures that the caches remain consistent with main memory
// during this transfer").
type EISA struct {
	eng      *sim.Engine
	cfg      EISAConfig
	xbus     *Xpress
	busyTill sim.Time
	stats    EISAStats
	freeBW   *bridgeWrite // pooled deposit events
}

// bridgeWrite is the bridge's Xpress-side deposit, fired when the EISA
// burst completes. Bursts serialize behind busyTill, but the events are
// free-listed rather than embedded so overlapping callers stay correct.
type bridgeWrite struct {
	e    *EISA
	a    phys.PAddr
	data []byte
	next *bridgeWrite
}

func (bw *bridgeWrite) Fire() {
	e, a, data := bw.e, bw.a, bw.data
	bw.data = nil
	bw.next = e.freeBW
	e.freeBW = bw
	e.xbus.Write(InitBridge, a, data)
}

// NewEISA builds the expansion bus bridged onto the given memory bus.
func NewEISA(eng *sim.Engine, cfg EISAConfig, xbus *Xpress) *EISA {
	return &EISA{eng: eng, cfg: cfg, xbus: xbus}
}

// Stats returns a snapshot of bus statistics.
func (e *EISA) Stats() EISAStats { return e.stats }

// Config returns the bus parameters.
func (e *EISA) Config() EISAConfig { return e.cfg }

// Reset returns the bus to its just-built state: idle, zeroed
// statistics. Zeroing Bursts matters for determinism: chained-burst
// detection tests `busyTill >= start && Bursts > 0`, so a reset bus must
// charge the first burst full setup exactly as a fresh one does. The
// bridge-write pool is retained.
func (e *EISA) Reset() {
	e.busyTill = 0
	e.stats = EISAStats{}
}

// DMAWrite streams data into main memory at a via a DMA burst, returning
// the completion time. Consecutive bursts chain at reduced setup cost.
func (e *EISA) DMAWrite(a phys.PAddr, data []byte) (done sim.Time) {
	start := e.eng.Now()
	setup := e.cfg.Setup
	if e.busyTill >= start && e.stats.Bursts > 0 {
		// The DMA engine kept the bus: chained burst.
		setup = e.cfg.ChainSetup
		e.stats.ChainedBursts++
		start = e.busyTill
	} else if e.busyTill > start {
		start = e.busyTill
	}
	stream := sim.PerByte(e.cfg.BytesPerSecond, len(data))
	done = start + setup + stream
	e.busyTill = done
	e.stats.Bursts++
	e.stats.Bytes += uint64(len(data))
	e.stats.SetupTime += setup
	e.stats.BusyTime += setup + stream
	// The bridge's Xpress-side deposit is overlapped with the EISA
	// stream (the memory bus is at least twice as fast, §5.1); the data
	// is resident in memory when the burst completes, issued as a
	// bridge transaction so caches snoop-invalidate.
	bw := e.freeBW
	if bw == nil {
		bw = &bridgeWrite{e: e}
	} else {
		e.freeBW = bw.next
	}
	bw.a, bw.data = a, data
	e.eng.Schedule(done, bw)
	return done
}

package bus

import (
	"bytes"
	"testing"

	"repro/internal/phys"
	"repro/internal/sim"
)

type recordingSnooper struct {
	inits []Initiator
	addrs []phys.PAddr
	data  [][]byte
}

func (r *recordingSnooper) SnoopWrite(init Initiator, a phys.PAddr, data []byte) {
	r.inits = append(r.inits, init)
	r.addrs = append(r.addrs, a)
	r.data = append(r.data, append([]byte(nil), data...))
}

type fakeCmd struct {
	readVal  uint32
	accepted bool
	writes   []uint32
	reads    int
}

func (f *fakeCmd) CmdRead(a phys.PAddr) uint32 { f.reads++; return f.readVal }
func (f *fakeCmd) CmdWrite(a phys.PAddr, v uint32) bool {
	f.writes = append(f.writes, v)
	return f.accepted
}

func newBus() (*sim.Engine, *Xpress, *recordingSnooper) {
	eng := sim.NewEngine()
	mem := phys.NewMemory(4)
	x := NewXpress(eng, DefaultXpressConfig(), mem)
	s := &recordingSnooper{}
	x.AddSnooper(s)
	return eng, x, s
}

func TestWriteUpdatesMemoryAndSnoops(t *testing.T) {
	_, x, s := newBus()
	done := x.Write32(InitCPU, 64, 0xaabbccdd)
	if done <= 0 {
		t.Fatal("no time charged")
	}
	if x.Memory().Read32(64) != 0xaabbccdd {
		t.Fatal("memory not updated")
	}
	if len(s.inits) != 1 || s.inits[0] != InitCPU || s.addrs[0] != 64 {
		t.Fatalf("snoop record %+v", s)
	}
	if !bytes.Equal(s.data[0], []byte{0xdd, 0xcc, 0xbb, 0xaa}) {
		t.Fatal("snooped data wrong")
	}
}

func TestInitiatorPropagates(t *testing.T) {
	_, x, s := newBus()
	x.Write32(InitNIC, 0, 1)
	x.Write32(InitBridge, 4, 2)
	if s.inits[0] != InitNIC || s.inits[1] != InitBridge {
		t.Fatalf("initiators %v", s.inits)
	}
	if InitCPU.String() != "cpu" || InitNIC.String() != "nic" || InitBridge.String() != "bridge" {
		t.Fatal("initiator names")
	}
}

func TestBusSerializesTransactions(t *testing.T) {
	eng, x, _ := newBus()
	d1 := x.Write32(InitCPU, 0, 1)
	d2 := x.Write32(InitCPU, 4, 2)
	if d2 <= d1 {
		t.Fatalf("second transaction did not queue: %v %v", d1, d2)
	}
	st := x.Stats()
	if st.Writes != 2 || st.ContentionWait == 0 {
		t.Fatalf("stats %+v", st)
	}
	// After time passes, a new transaction starts fresh.
	eng.RunUntil(d2 + 10*sim.Microsecond)
	d3 := x.Write32(InitCPU, 8, 3)
	cost := x.cost(4)
	if d3 != eng.Now()+cost {
		t.Fatalf("idle bus charged %v, want %v", d3-eng.Now(), cost)
	}
}

func TestLargerTransfersCostMore(t *testing.T) {
	_, x, _ := newBus()
	small := x.cost(4)
	big := x.cost(64)
	if big <= small {
		t.Fatal("cost not size dependent")
	}
}

func TestReadRoundTrip(t *testing.T) {
	_, x, _ := newBus()
	x.Memory().Write(128, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	data, _ := x.Read(InitCPU, 128, 8)
	if !bytes.Equal(data, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatal("read data")
	}
	v, _ := x.Read32(InitCPU, 128)
	if v != 0x04030201 {
		t.Fatalf("read32 %#x", v)
	}
	if x.Stats().BytesRead != 12 {
		t.Fatalf("bytes read %d", x.Stats().BytesRead)
	}
}

func TestCommandSpaceDecode(t *testing.T) {
	_, x, s := newBus()
	cmd := &fakeCmd{readVal: 77, accepted: true}
	x.SetCommandTarget(cmd)
	base := x.Memory().CmdBase()

	v, _ := x.Read32(InitCPU, base+100)
	if v != 77 || cmd.reads != 1 {
		t.Fatal("command read not decoded")
	}
	x.Write32(InitCPU, base+100, 55)
	if len(cmd.writes) != 1 || cmd.writes[0] != 55 {
		t.Fatal("command write not decoded")
	}
	// Command traffic must not touch RAM or snoopers.
	if len(s.inits) != 0 {
		t.Fatal("command write reached snoopers")
	}
	st := x.Stats()
	if st.CmdReads != 1 || st.CmdWrites != 1 || st.Writes != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLockedCmpxchgOnMemory(t *testing.T) {
	_, x, s := newBus()
	x.Memory().Write32(16, 5)
	// Mismatch: no write cycle.
	read, swapped, _ := x.LockedCmpxchg(InitCPU, 16, 0, 9)
	if swapped || read != 5 || x.Memory().Read32(16) != 5 {
		t.Fatal("mismatched cmpxchg wrote")
	}
	if len(s.inits) != 0 {
		t.Fatal("failed cmpxchg snooped a write")
	}
	// Match: write cycle, snooped.
	read, swapped, _ = x.LockedCmpxchg(InitCPU, 16, 5, 9)
	if !swapped || read != 5 || x.Memory().Read32(16) != 9 {
		t.Fatal("matched cmpxchg failed")
	}
	if len(s.inits) != 1 {
		t.Fatal("successful cmpxchg write not snooped")
	}
}

func TestLockedCmpxchgOnCommandSpace(t *testing.T) {
	_, x, _ := newBus()
	cmd := &fakeCmd{readVal: 0, accepted: true}
	x.SetCommandTarget(cmd)
	base := x.Memory().CmdBase()

	// Read returns 0, matches expect=0, write issued and accepted.
	read, swapped, _ := x.LockedCmpxchg(InitCPU, base, 0, 64)
	if !swapped || read != 0 || len(cmd.writes) != 1 || cmd.writes[0] != 64 {
		t.Fatal("free-engine cmpxchg should start the command")
	}
	// Engine busy: read nonzero, expect 0 -> no write cycle.
	cmd.readVal = 201
	read, swapped, _ = x.LockedCmpxchg(InitCPU, base, 0, 64)
	if swapped || read != 201 || len(cmd.writes) != 1 {
		t.Fatal("busy-engine cmpxchg should not write")
	}
	// NIC may reject the write even when the read matched.
	cmd.readVal = 0
	cmd.accepted = false
	_, swapped, _ = x.LockedCmpxchg(InitCPU, base, 0, 0)
	if swapped {
		t.Fatal("rejected command reported as swapped")
	}
}

func TestSnoopFilterSkipsCPUWritesOnly(t *testing.T) {
	_, x, s := newBus()
	wanted := map[phys.PAddr]bool{64: true}
	x.SetSnoopFilter(func(a phys.PAddr) bool { return wanted[a] })

	x.Write32(InitCPU, 0, 1) // filtered out: no snooper cares
	if len(s.inits) != 0 {
		t.Fatal("filtered CPU write reached snoopers")
	}
	x.Write32(InitCPU, 64, 2) // filter says yes
	if len(s.inits) != 1 {
		t.Fatal("interesting CPU write did not snoop")
	}
	// DMA traffic is never filtered: the cache's invalidation port must
	// see every deposit.
	x.Write32(InitBridge, 0, 3)
	x.Write32(InitNIC, 0, 4)
	if len(s.inits) != 3 {
		t.Fatalf("DMA writes filtered: %v", s.inits)
	}
	if st := x.Stats(); st.SnoopsFiltered != 1 {
		t.Fatalf("SnoopsFiltered %d, want 1", st.SnoopsFiltered)
	}
	// Memory is updated regardless of filtering.
	if x.Memory().Read32(0) != 4 {
		t.Fatal("filtered write lost data")
	}

	// Cmpxchg write cycles obey the same filter.
	x.Memory().Write32(4, 7)
	x.LockedCmpxchg(InitCPU, 4, 7, 8)
	if len(s.inits) != 3 || x.Stats().SnoopsFiltered != 2 {
		t.Fatalf("cmpxchg bypassed the filter: snoops=%d filtered=%d",
			len(s.inits), x.Stats().SnoopsFiltered)
	}

	x.SetSnoopFilter(nil) // conservative default restored
	x.Write32(InitCPU, 0, 5)
	if len(s.inits) != 4 {
		t.Fatal("nil filter must fan out every write")
	}
}

// nopSnooper is an allocation-free snooper for the benchmarks below.
type nopSnooper struct{ writes uint64 }

func (n *nopSnooper) SnoopWrite(init Initiator, a phys.PAddr, data []byte) { n.writes++ }

// The hot-path transactions must not allocate: Write32 and Read32 stage
// their payloads in the bus-owned scratch buffer, and command-space
// reads return a view of it. ci.sh greps these benchmarks for
// "0 allocs/op".
func BenchmarkBusWrite32(b *testing.B) {
	eng := sim.NewEngine()
	x := NewXpress(eng, DefaultXpressConfig(), phys.NewMemory(4))
	x.AddSnooper(&nopSnooper{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Write32(InitCPU, 64, uint32(i))
	}
}

func BenchmarkBusWrite32Filtered(b *testing.B) {
	eng := sim.NewEngine()
	x := NewXpress(eng, DefaultXpressConfig(), phys.NewMemory(4))
	x.AddSnooper(&nopSnooper{})
	x.SetSnoopFilter(func(a phys.PAddr) bool { return false })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Write32(InitCPU, 64, uint32(i))
	}
}

func BenchmarkBusRead32(b *testing.B) {
	eng := sim.NewEngine()
	x := NewXpress(eng, DefaultXpressConfig(), phys.NewMemory(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Read32(InitCPU, 64)
	}
}

func BenchmarkBusCmdRead(b *testing.B) {
	eng := sim.NewEngine()
	x := NewXpress(eng, DefaultXpressConfig(), phys.NewMemory(4))
	x.SetCommandTarget(&fakeCmd{readVal: 42})
	base := x.Memory().CmdBase()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Read(InitCPU, base, 4)
	}
}

func TestEISATimingAndChaining(t *testing.T) {
	eng := sim.NewEngine()
	mem := phys.NewMemory(4)
	x := NewXpress(eng, DefaultXpressConfig(), mem)
	e := NewEISA(eng, DefaultEISAConfig(), x)

	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i + 1) // nonzero so deposits are distinguishable
	}
	d1 := e.DMAWrite(0, data)
	stream := sim.PerByte(e.Config().BytesPerSecond, len(data))
	if d1 != eng.Now()+e.Config().Setup+stream {
		t.Fatalf("first burst time %v", d1)
	}
	// Memory lands at completion, not at start.
	if mem.Read8(0) == data[0] {
		t.Fatal("deposit visible before burst completion")
	}
	eng.RunUntil(d1)
	if mem.Read8(0) != data[0] || mem.Read8(999) != data[999] {
		t.Fatal("deposit missing after completion")
	}
	// A back-to-back burst chains at reduced setup.
	d2 := e.DMAWrite(1024, data)
	if d2-d1 != e.Config().ChainSetup+stream {
		t.Fatalf("chained burst time %v", d2-d1)
	}
	st := e.Stats()
	if st.Bursts != 2 || st.ChainedBursts != 1 || st.Bytes != 2000 {
		t.Fatalf("stats %+v", st)
	}
	// After idle, full setup applies again.
	eng.RunUntil(d2 + sim.Millisecond)
	d3 := e.DMAWrite(2048, data[:4])
	if d3-eng.Now() != e.Config().Setup+sim.PerByte(e.Config().BytesPerSecond, 4) {
		t.Fatal("idle burst should pay full setup")
	}
}

func TestEISABandwidthMatchesRating(t *testing.T) {
	eng := sim.NewEngine()
	mem := phys.NewMemory(64)
	x := NewXpress(eng, DefaultXpressConfig(), mem)
	e := NewEISA(eng, DefaultEISAConfig(), x)
	total := 0
	start := eng.Now()
	var done sim.Time
	for i := 0; i < 32; i++ {
		chunk := make([]byte, 4096)
		done = e.DMAWrite(phys.PAddr(i*4096), chunk)
		total += len(chunk)
		eng.RunUntil(done)
	}
	mbps := float64(total) / 1e6 / (done - start).Seconds()
	if mbps > 33.0 || mbps < 30.0 {
		t.Fatalf("sustained EISA bandwidth %.2f MB/s, rated 33", mbps)
	}
}

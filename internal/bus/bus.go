// Package bus models the two buses of a SHRIMP node (paper §3):
//
//   - the Xpress memory bus, which connects CPU, DRAM and the I/O bridge
//     and which the network interface snoops through the memory extension
//     connector — every write transaction is visible to registered
//     snoopers, which is how automatic update works;
//   - the EISA expansion bus, over which the prototype network interface
//     DMA-transfers incoming data to main memory at a burst-mode peak of
//     33 Mbytes/second — the bandwidth bottleneck of the whole system.
//
// Both buses are single-tenancy timed resources: each transaction
// occupies the bus for a duration derived from its size, and back-to-back
// transactions serialize. Memory side effects happen eagerly (the DES is
// single-threaded and components observe memory only through bus
// transactions), while the returned completion time carries the cost.
package bus

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/phys"
	"repro/internal/sim"
)

// Initiator identifies which agent mastered a bus transaction. Snoopers
// use it to tell CPU stores (forwarded by the NIC if mapped out) from DMA
// traffic (invalidated by the cache, ignored by the NIC's outgoing path).
type Initiator uint8

const (
	// InitCPU marks transactions issued by the node's processor.
	InitCPU Initiator = iota
	// InitNIC marks transactions mastered by the network interface
	// (deliberate-update DMA reads, next-generation incoming deposits).
	InitNIC
	// InitBridge marks transactions from the EISA-to-Xpress bridge
	// (prototype incoming DMA deposits).
	InitBridge
)

func (i Initiator) String() string {
	switch i {
	case InitCPU:
		return "cpu"
	case InitNIC:
		return "nic"
	case InitBridge:
		return "bridge"
	}
	return fmt.Sprintf("Initiator(%d)", uint8(i))
}

// Snooper observes write transactions on the Xpress bus.
type Snooper interface {
	SnoopWrite(init Initiator, a phys.PAddr, data []byte)
}

// CommandTarget decodes accesses to the NIC command address space
// (paper §4.2). Command reads and writes are bus transactions that no
// RAM responds to; the network interface claims them.
type CommandTarget interface {
	// CmdRead returns the NIC's response to a read of command address a.
	CmdRead(a phys.PAddr) uint32
	// CmdWrite delivers a write of v to command address a. It reports
	// whether the NIC accepted the command.
	CmdWrite(a phys.PAddr, v uint32) bool
}

// XpressConfig holds the memory bus timing parameters.
type XpressConfig struct {
	Arbitration sim.Time // per-transaction arbitration/overhead
	WordTime    sim.Time // per-8-byte beat
}

// DefaultXpressConfig approximates a ~266 MB/s Xpress bus: 30 ns per
// 8-byte beat plus 30 ns arbitration.
func DefaultXpressConfig() XpressConfig {
	return XpressConfig{Arbitration: 30 * sim.Nanosecond, WordTime: 30 * sim.Nanosecond}
}

// XpressStats aggregates memory bus activity.
type XpressStats struct {
	Reads, Writes  uint64
	CmdReads       uint64
	CmdWrites      uint64
	BytesRead      uint64
	BytesWritten   uint64
	// SnoopsFiltered counts CPU writes that skipped the snooper fan-out
	// because the snoop filter reported no interested snooper (see
	// SetSnoopFilter).
	SnoopsFiltered uint64
	ContentionWait sim.Time
	BusyTime       sim.Time
}

// SnoopFilter decides, for a CPU-initiated write to a physical address,
// whether any registered snooper could care. The NIC installs a
// page-granular filter (does the NIPT map this page out?) so the common
// case — stores to private pages — skips the snooper fan-out entirely.
// The filter is consulted live on every write, never cached, so direct
// NIPT entry mutations need no invalidation hook. Only CPU-initiated
// writes are filtered: DMA traffic must always reach the cache's
// invalidation port.
type SnoopFilter func(a phys.PAddr) bool

// Xpress is one node's memory bus.
type Xpress struct {
	eng      *sim.Engine
	cfg      XpressConfig
	mem      *phys.Memory
	snoopers []Snooper
	cmd      CommandTarget
	filter   SnoopFilter
	busyTill sim.Time
	stats    XpressStats
	scope    *obs.NodeScope // nil when metrics are disabled
	scratch  [4]byte        // Write32/Read32/cmd-read staging; consumers copy synchronously
}

// NewXpress builds the memory bus over the given DRAM.
func NewXpress(eng *sim.Engine, cfg XpressConfig, mem *phys.Memory) *Xpress {
	return &Xpress{eng: eng, cfg: cfg, mem: mem}
}

// AddSnooper registers a bus snooper (the NIC, the cache's invalidation
// port). Registration order is the notification order.
func (x *Xpress) AddSnooper(s Snooper) { x.snoopers = append(x.snoopers, s) }

// SetCommandTarget registers the decoder for the command address space.
func (x *Xpress) SetCommandTarget(t CommandTarget) { x.cmd = t }

// SetSnoopFilter installs the CPU-write snoop filter (nil removes it:
// every write fans out, the conservative default).
func (x *Xpress) SetSnoopFilter(f SnoopFilter) { x.filter = f }

// SetObs attaches the node's metrics scope (nil detaches).
func (x *Xpress) SetObs(s *obs.NodeScope) { x.scope = s }

// Memory returns the DRAM behind the bus.
func (x *Xpress) Memory() *phys.Memory { return x.mem }

// Stats returns a snapshot of bus statistics.
func (x *Xpress) Stats() XpressStats { return x.stats }

// BusyUntil returns the time at which all issued transactions complete.
// The cache's posted-write (write buffer) model uses it to decide when
// the CPU must stall behind its own store traffic.
func (x *Xpress) BusyUntil() sim.Time { return x.busyTill }

// Reset returns the bus to its just-built state: idle, zeroed
// statistics. Registered snoopers and the command target persist — they
// are wiring, not state.
func (x *Xpress) Reset() {
	x.busyTill = 0
	x.stats = XpressStats{}
}

// cost returns the tenure duration for an n-byte transaction.
func (x *Xpress) cost(n int) sim.Time {
	beats := sim.Time((n + 7) / 8)
	if beats == 0 {
		beats = 1
	}
	return x.cfg.Arbitration + beats*x.cfg.WordTime
}

// acquire serializes a transaction of the given size behind current bus
// traffic, returning its completion time.
func (x *Xpress) acquire(n int) sim.Time {
	start := x.eng.Now()
	x.scope.Inc(obs.CtrBusTxns)
	if x.busyTill > start {
		x.stats.ContentionWait += x.busyTill - start
		x.scope.Add(obs.CtrBusWaitPs, uint64(x.busyTill-start))
		start = x.busyTill
	}
	d := x.cost(n)
	x.busyTill = start + d
	x.stats.BusyTime += d
	return x.busyTill
}

// Write performs a write transaction: DRAM is updated and all snoopers
// observe it. Writes to the command space are routed to the command
// target instead (only 32-bit command writes are meaningful).
func (x *Xpress) Write(init Initiator, a phys.PAddr, data []byte) (done sim.Time) {
	done = x.acquire(len(data))
	if x.mem.IsCmd(a) {
		if x.cmd == nil {
			panic(fmt.Sprintf("bus: command write %#x with no command target", uint32(a)))
		}
		x.stats.CmdWrites++
		var v uint32
		for i := 0; i < len(data) && i < 4; i++ {
			v |= uint32(data[i]) << (8 * i)
		}
		x.cmd.CmdWrite(a, v)
		return done
	}
	x.stats.Writes++
	x.stats.BytesWritten += uint64(len(data))
	x.mem.Write(a, data)
	if init == InitCPU && x.filter != nil && !x.filter(a) {
		x.stats.SnoopsFiltered++
		x.scope.Inc(obs.CtrSnoopsFiltered)
		return done
	}
	for _, s := range x.snoopers {
		s.SnoopWrite(init, a, data)
	}
	return done
}

// Write32 is a convenience 32-bit Write. The payload is staged in the
// bus-owned scratch buffer (snoopers copy write data synchronously and
// never retain the slice), so it allocates nothing.
func (x *Xpress) Write32(init Initiator, a phys.PAddr, v uint32) sim.Time {
	return x.Write(init, a, x.leBytes(v))
}

// Read performs a read transaction of n bytes at a. Command-space reads
// return a view of the bus-owned scratch buffer, valid until the next
// transaction; callers consume read data synchronously.
func (x *Xpress) Read(init Initiator, a phys.PAddr, n int) (data []byte, done sim.Time) {
	done = x.acquire(n)
	if x.mem.IsCmd(a) {
		if x.cmd == nil {
			panic(fmt.Sprintf("bus: command read %#x with no command target", uint32(a)))
		}
		x.stats.CmdReads++
		return x.leBytes(x.cmd.CmdRead(a))[:min(n, 4)], done
	}
	x.stats.Reads++
	x.stats.BytesRead += uint64(n)
	return x.mem.Read(a, n), done
}

// ReadInto performs a read transaction of len(dst) bytes at a, copying
// into dst: the allocation-free twin of Read for DMA engines that reuse a
// scratch buffer. The command address space is not readable through this
// path.
func (x *Xpress) ReadInto(init Initiator, a phys.PAddr, dst []byte) (done sim.Time) {
	done = x.acquire(len(dst))
	if x.mem.IsCmd(a) {
		panic(fmt.Sprintf("bus: ReadInto of command address %#x", uint32(a)))
	}
	x.stats.Reads++
	x.stats.BytesRead += uint64(len(dst))
	x.mem.ReadInto(a, dst)
	return done
}

// Read32 is a convenience 32-bit Read; it bypasses the slice-returning
// path entirely, so 4-byte kernel/NIC/cache reads allocate nothing.
func (x *Xpress) Read32(init Initiator, a phys.PAddr) (uint32, sim.Time) {
	done := x.acquire(4)
	if x.mem.IsCmd(a) {
		if x.cmd == nil {
			panic(fmt.Sprintf("bus: command read %#x with no command target", uint32(a)))
		}
		x.stats.CmdReads++
		return x.cmd.CmdRead(a), done
	}
	x.stats.Reads++
	x.stats.BytesRead += 4
	return x.mem.Read32(a), done
}

// LockedCmpxchg performs the locked compare-and-exchange bus sequence of
// §4.3: a read cycle, then — iff the read value equals expect — a write
// cycle, all in one bus tenure. It reports the value returned by the read
// cycle and whether the write cycle was generated.
func (x *Xpress) LockedCmpxchg(init Initiator, a phys.PAddr, expect, repl uint32) (read uint32, swapped bool, done sim.Time) {
	// One tenure covering both cycles (LOCK holds the bus).
	done = x.acquire(8)
	if x.mem.IsCmd(a) {
		if x.cmd == nil {
			panic(fmt.Sprintf("bus: locked cmpxchg %#x with no command target", uint32(a)))
		}
		x.stats.CmdReads++
		read = x.cmd.CmdRead(a)
		if read == expect {
			x.stats.CmdWrites++
			if x.cmd.CmdWrite(a, repl) {
				swapped = true
			}
		}
		return read, swapped, done
	}
	x.stats.Reads++
	read = x.mem.Read32(a)
	if read == expect {
		x.stats.Writes++
		x.mem.Write32(a, repl)
		if init == InitCPU && x.filter != nil && !x.filter(a) {
			x.stats.SnoopsFiltered++
			x.scope.Inc(obs.CtrSnoopsFiltered)
		} else {
			for _, s := range x.snoopers {
				s.SnoopWrite(init, a, x.leBytes(repl))
			}
		}
		swapped = true
	}
	return read, swapped, done
}

// leBytes stages v little-endian in the bus-owned scratch buffer. Bus
// consumers copy read/write data synchronously and never retain the
// slice, so reusing one buffer per bus is safe.
func (x *Xpress) leBytes(v uint32) []byte {
	x.scratch[0] = byte(v)
	x.scratch[1] = byte(v >> 8)
	x.scratch[2] = byte(v >> 16)
	x.scratch[3] = byte(v >> 24)
	return x.scratch[:4]
}

// Package trace is a lightweight, bounded event tracer for the
// simulated machine. Components record fixed-size structured events
// (no allocation beyond the ring) and tools render them after the run —
// the software analogue of a logic analyzer on the NIC datapath.
//
// A nil *Tracer is valid and records nothing, so components can carry
// an optional tracer without nil checks at every call site.
package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds. A and B are kind-specific arguments.
const (
	// PacketOut: a packet left a node. A=payload bytes, B=destination node.
	PacketOut Kind = iota
	// PacketIn: a packet was deposited. A=payload bytes, B=dest page.
	PacketIn
	// Drop: a packet was discarded. A=reason (DropReason), B=dest page.
	Drop
	// DMAStart: the deliberate-update engine accepted a command.
	// A=word count, B=base physical address.
	DMAStart
	// DMADone: the engine finished a transfer. A=word count.
	DMADone
	// IRQ: the NIC interrupted the CPU. A=cause, B=page.
	IRQ
	// OutStall: the Outgoing FIFO crossed its threshold. A=bytes.
	OutStall
	// OutResume: the Outgoing FIFO drained below its threshold. A=bytes.
	OutResume
	// Park: the mesh parked a worm at a refusing endpoint. B=node index.
	Park
	// MapEstablished: a kernel installed an outgoing mapping.
	// A=local frame, B=remote page.
	MapEstablished
	// MapTorn: a mapping was removed or invalidated. A=local frame.
	MapTorn
	// PageEvicted: a kernel replaced a page. A=frame.
	PageEvicted
	// PageIn: a kernel restored a page. A=new frame.
	PageIn
	numKinds
)

var kindNames = [...]string{
	"packet-out", "packet-in", "drop", "dma-start", "dma-done", "irq",
	"out-stall", "out-resume", "park", "map", "unmap", "evict", "page-in",
}

// Compile-time guards: kindNames must list exactly numKinds names. The
// const fails to compile when names outnumber kinds (negative uint), the
// index fails when kinds outnumber names (out-of-range constant index).
const _ = uint(int(numKinds) - len(kindNames))

var _ = kindNames[numKinds-1]

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Drop reasons (the A argument of Drop events).
const (
	DropNotMappedIn uint64 = iota
	DropWrongDest
	DropCRC
	DropFault    // lost to the fault injector (drop roll or downed link)
	DropRelDup   // reliable-delivery duplicate discarded
	DropRelGap   // reliable-delivery out-of-order packet discarded (NACKed)
	DropNodeDead // arrived at a crashed node's NIC
	DropPeerDown // suppressed at the sender: the destination was declared dead
)

var dropReasonNames = [...]string{
	"not-mapped-in", "wrong-dest", "crc", "fault", "rel-dup", "rel-gap",
	"node-dead", "peer-down",
}

// dropReason renders a Drop event's A argument without trusting it:
// events are data, and an out-of-range reason must not panic String.
func dropReason(a uint64) string {
	if a < uint64(len(dropReasonNames)) {
		return dropReasonNames[a]
	}
	return fmt.Sprintf("reason(%d)", a)
}

// Event is one recorded occurrence.
type Event struct {
	At   sim.Time
	Node int
	Kind Kind
	A, B uint64
}

func (e Event) String() string {
	switch e.Kind {
	case PacketOut:
		return fmt.Sprintf("%12v node%-2d packet-out  %4dB -> (%d,%d)", e.At, e.Node, e.A, e.B>>8, e.B&0xff)
	case PacketIn:
		return fmt.Sprintf("%12v node%-2d packet-in   %4dB page %d", e.At, e.Node, e.A, e.B)
	case Drop:
		return fmt.Sprintf("%12v node%-2d DROP        %s page %d", e.At, e.Node, dropReason(e.A), e.B)
	case DMAStart:
		return fmt.Sprintf("%12v node%-2d dma-start   %d words @%#x", e.At, e.Node, e.A, e.B)
	case DMADone:
		return fmt.Sprintf("%12v node%-2d dma-done", e.At, e.Node)
	case IRQ:
		return fmt.Sprintf("%12v node%-2d irq         cause=%d page=%d", e.At, e.Node, e.A, e.B)
	case OutStall:
		return fmt.Sprintf("%12v node%-2d out-stall   %dB queued", e.At, e.Node, e.A)
	case OutResume:
		return fmt.Sprintf("%12v node%-2d out-resume  %dB queued", e.At, e.Node, e.A)
	case Park:
		return fmt.Sprintf("%12v node%-2d park        (receiver full)", e.At, e.Node)
	case MapEstablished:
		return fmt.Sprintf("%12v node%-2d map         frame %d -> remote page %d", e.At, e.Node, e.A, e.B)
	case MapTorn:
		return fmt.Sprintf("%12v node%-2d unmap       frame %d", e.At, e.Node, e.A)
	case PageEvicted:
		return fmt.Sprintf("%12v node%-2d evict       frame %d", e.At, e.Node, e.A)
	case PageIn:
		return fmt.Sprintf("%12v node%-2d page-in     frame %d", e.At, e.Node, e.A)
	}
	return fmt.Sprintf("%12v node%-2d %v A=%d B=%d", e.At, e.Node, e.Kind, e.A, e.B)
}

// Tracer is a bounded ring of events. The zero value is unusable; use
// New. A nil Tracer is a no-op recorder.
type Tracer struct {
	eng    *sim.Engine
	buf    []Event
	next   int
	total  uint64
	byKind [numKinds]uint64
}

// New builds a tracer retaining the last capacity events.
func New(eng *sim.Engine, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1
	}
	return &Tracer{eng: eng, buf: make([]Event, 0, capacity)}
}

// Record appends one event; nil-safe.
func (t *Tracer) Record(node int, kind Kind, a, b uint64) {
	if t == nil {
		return
	}
	ev := Event{At: t.eng.Now(), Node: node, Kind: kind, A: a, B: b}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
	t.byKind[kind]++
}

// Reset discards all recorded events and zeroes the counters, keeping
// the ring's backing array; nil-safe.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.buf = t.buf[:0]
	t.next = 0
	t.total = 0
	t.byKind = [numKinds]uint64{}
}

// Total returns the number of events recorded (including evicted ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// CountOf returns how many events of a kind were recorded.
func (t *Tracer) CountOf(kind Kind) uint64 {
	if t == nil {
		return 0
	}
	return t.byKind[kind]
}

// Events returns the retained events in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if len(t.buf) < cap(t.buf) {
		return append([]Event(nil), t.buf...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Dump renders the retained events, one per line, plus a kind summary.
func (t *Tracer) Dump(w io.Writer) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "tracing disabled")
		return err
	}
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "-- %d event(s) total", t.total); err != nil {
		return err
	}
	for k := Kind(0); k < numKinds; k++ {
		if t.byKind[k] > 0 {
			if _, err := fmt.Fprintf(w, "  %s=%d", k, t.byKind[k]); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

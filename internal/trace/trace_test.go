package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Record(0, PacketOut, 1, 2) // must not panic
	if tr.Total() != 0 || tr.CountOf(PacketOut) != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded something")
	}
	var b strings.Builder
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "disabled") {
		t.Fatal("nil dump message")
	}
}

func TestRecordAndOrder(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng, 10)
	tr.Record(0, PacketOut, 4, 1<<8)
	eng.Advance(100 * sim.Nanosecond)
	tr.Record(1, PacketIn, 4, 8)
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Kind != PacketOut || evs[1].Kind != PacketIn {
		t.Fatalf("events %v", evs)
	}
	if evs[1].At != 100*sim.Nanosecond {
		t.Fatal("timestamp")
	}
	if tr.CountOf(PacketIn) != 1 {
		t.Fatal("count")
	}
}

func TestRingEviction(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng, 4)
	for i := 0; i < 10; i++ {
		tr.Record(i, IRQ, uint64(i), 0)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d", len(evs))
	}
	// The last four, in order.
	for i, e := range evs {
		if e.Node != 6+i {
			t.Fatalf("event %d from node %d", i, e.Node)
		}
	}
	if tr.Total() != 10 {
		t.Fatal("total")
	}
}

func TestEventStrings(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng, 32)
	tr.Record(0, PacketOut, 64, 3<<8|1)
	tr.Record(1, Drop, DropCRC, 9)
	tr.Record(1, DMAStart, 128, 0x4000)
	tr.Record(1, MapEstablished, 5, 7)
	var b strings.Builder
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"packet-out", "-> (3,1)", "DROP", "crc", "dma-start", "128 words", "frame 5 -> remote page 7", "4 event(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestReset(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng, 4)
	for i := 0; i < 7; i++ {
		tr.Record(i, IRQ, 0, 0)
	}
	tr.Reset()
	if tr.Total() != 0 || tr.CountOf(IRQ) != 0 || len(tr.Events()) != 0 {
		t.Fatal("reset left state behind")
	}
	// The ring records correctly again after reset, including the
	// wraparound path (write position must have rewound to the start).
	for i := 0; i < 6; i++ {
		tr.Record(i, PacketOut, uint64(i), 0)
	}
	evs := tr.Events()
	if len(evs) != 4 || evs[0].Node != 2 || evs[3].Node != 5 {
		t.Fatalf("post-reset events %v", evs)
	}
	var nilTr *Tracer
	nilTr.Reset() // must not panic
}

func TestDropReasonFallback(t *testing.T) {
	// A Drop event with an out-of-range reason must render, not panic:
	// trace events are data, and String runs on whatever was recorded.
	e := Event{Kind: Drop, A: 99, B: 3}
	got := e.String()
	if !strings.Contains(got, "reason(99)") {
		t.Fatalf("fallback rendering: %q", got)
	}
	if s := (Event{Kind: Drop, A: DropWrongDest}).String(); !strings.Contains(s, "wrong-dest") {
		t.Fatalf("known reason rendering: %q", s)
	}
}

func TestKindNamesInSync(t *testing.T) {
	// The compile-time guards next to kindNames catch count mismatches;
	// this catches accidentally empty or placeholder entries.
	for k := Kind(0); k < numKinds; k++ {
		if name := k.String(); name == "" || strings.HasPrefix(name, "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if got := numKinds.String(); !strings.HasPrefix(got, "Kind(") {
		t.Fatalf("out-of-range kind rendered as %q", got)
	}
}

func TestMachineLevelTrace(t *testing.T) {
	// Every kind renders without panicking.
	eng := sim.NewEngine()
	tr := New(eng, 64)
	for k := Kind(0); k < numKinds; k++ {
		tr.Record(0, k, 0, 0)
	}
	for _, e := range tr.Events() {
		if e.String() == "" {
			t.Fatal("empty rendering")
		}
	}
}

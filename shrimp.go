// Package shrimp is a full-system simulation of the SHRIMP multicomputer
// and its virtual memory-mapped network interface (Blumrich, Li, Alpert,
// Dubnicki, Felten, Sandberg — Princeton University).
//
// A Machine is a 2-D wormhole mesh of nodes; each node is a CPU (an
// i386-subset interpreter), a per-page write-through/write-back cache, an
// Xpress memory bus, an EISA expansion bus, DRAM, a kernel, and the
// network interface itself: a bus snooper driven by a Network Interface
// Page Table that turns ordinary stores to mapped pages into network
// packets. The paper's three core mechanisms are all here:
//
//   - virtual memory mapping: Kernel.Map validates protection once and
//     installs physical mappings in the NIPT; thereafter communication
//     is pure user-level stores;
//   - automatic update: snooped stores propagate immediately
//     (single-write) or merged (blocked-write);
//   - deliberate update: user-level DMA block transfer initiated with a
//     locked CMPXCHG on a VM-mapped command page.
//
// # Quickstart
//
//	m := shrimp.New(shrimp.ConfigFor(2, 1, shrimp.GenEISAPrototype))
//	snd := shrimp.NewEndpoint(m.Node(0))
//	rcv := shrimp.NewEndpoint(m.Node(1))
//	ch, err := shrimp.NewChannel(m, snd, rcv, 1)
//	...
//	ch.Send([]byte("hello, mesh"))
//	data, err := ch.Recv()
//
// Everything runs on a deterministic discrete-event clock: Send/Recv and
// the experiment harnesses advance simulated time; wall-clock time plays
// no role. See EXPERIMENTS.md for the paper-versus-measured results.
package shrimp

import (
	"io"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/msg"
	"repro/internal/nic"
	"repro/internal/nipt"
	"repro/internal/nx"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Machine construction and topology.
type (
	// Machine is a booted SHRIMP multicomputer.
	Machine = core.Machine
	// Node is one node: CPU, cache, buses, memory, NIC, kernel.
	Node = core.Node
	// Config describes a machine.
	Config = core.Config
	// NodeID identifies a node.
	NodeID = packet.NodeID
	// Coord is a position on the routing backplane.
	Coord = packet.Coord
	// Generation selects the NIC's incoming deposit path.
	Generation = nic.Generation
)

// Operating system objects.
type (
	// Process is one schedulable address space.
	Process = kernel.Process
	// Kernel is one node's operating system.
	Kernel = kernel.Kernel
	// Mapping is the handle returned by Map.
	Mapping = kernel.Mapping
	// Future is an asynchronous kernel operation's completion handle.
	Future = kernel.Future
	// PagingPolicy selects the §4.4 consistency policy.
	PagingPolicy = kernel.PagingPolicy
	// VAddr is a process virtual address.
	VAddr = vm.VAddr
)

// Mapping modes and generations.
type Mode = nipt.Mode

// Update strategies (paper §2, §4.1, §4.3).
const (
	// SingleWriteAU sends one packet per snooped store (lowest latency).
	SingleWriteAU = nipt.SingleWriteAU
	// BlockedWriteAU merges consecutive stores into one packet.
	BlockedWriteAU = nipt.BlockedWriteAU
	// DeliberateUpdate transfers only on an explicit user-level command.
	DeliberateUpdate = nipt.DeliberateUpdate
)

// NIC generations (paper §3, §5.1).
const (
	// GenEISAPrototype deposits incoming data over the EISA bus.
	GenEISAPrototype = nic.GenEISAPrototype
	// GenXpress is the next generation, mastering the memory bus.
	GenXpress = nic.GenXpress
)

// Paging policies (paper §4.4).
const (
	// PinPages refuses to evict pages with incoming mappings.
	PinPages = kernel.PinPages
	// InvalidateProtocol shoots down remote mappings before replacement.
	InvalidateProtocol = kernel.InvalidateProtocol
)

// PageSize is the system page size (4 KB).
const PageSize = phys.PageSize

// Tracer is the machine-wide datapath event tracer (see
// Config.TraceCapacity).
type Tracer = trace.Tracer

// Observability (see Config.Metrics). The registry lives on
// Machine.Obs; Machine.Metrics() snapshots it and Machine.TraceJSON
// exports a Perfetto-loadable timeline.
type (
	// Metrics is the machine-wide registry of counters, gauges,
	// histograms, link stats and causal packet spans.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time export of the registry.
	MetricsSnapshot = obs.Snapshot
	// Span is one transfer's causal record: snoop → outgoing FIFO →
	// mesh → deposit timestamps.
	Span = obs.Span
	// RecorderConfig arms the flight recorder (Config.Recorder): a
	// zero-allocation sampler that snapshots the registry into a ring at
	// a fixed simulated cadence. Requires Config.Metrics.
	RecorderConfig = obs.RecorderConfig
	// Recorder is the armed flight recorder, on Machine.Rec.
	Recorder = obs.Recorder
	// WatchdogConfig arms the progress watchdog (Config.Watchdog): stall
	// and retry-storm detection surfaced as machine checks. Requires
	// Config.Metrics.
	WatchdogConfig = core.WatchdogConfig
	// OpenMetricsOptions tunes the OpenMetrics exposition writers.
	OpenMetricsOptions = obs.OpenMetricsOptions
)

// WriteOpenMetrics writes a snapshot in OpenMetrics text exposition
// format (machines expose the same via Machine.WriteOpenMetrics).
func WriteOpenMetrics(w io.Writer, s MetricsSnapshot, now Time) error {
	return obs.WriteOpenMetrics(w, s, now)
}

// Simulated time.
type Time = sim.Time

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// New boots a machine.
func New(cfg Config) *Machine { return core.New(cfg) }

// DefaultConfig is the paper's 16-node EISA prototype.
func DefaultConfig() Config { return core.DefaultConfig() }

// ConfigFor builds a config for a w×h mesh of the given generation.
func ConfigFor(w, h int, gen Generation) Config { return core.ConfigFor(w, h, gen) }

// Message passing (Go-level protocol implementations).
type (
	// Endpoint is a process on a node, one side of a channel.
	Endpoint = msg.Endpoint
	// Channel is a single-buffered one-way channel (Figure 5).
	Channel = msg.Channel
	// DoubleChannel is the Figure 6 double-buffered channel.
	DoubleChannel = msg.DoubleChannel
	// BlockSender drives §4.3 deliberate-update block transfers.
	BlockSender = msg.BlockSender
	// Barrier synchronizes N endpoints with mapped flag words.
	Barrier = msg.Barrier
	// Broadcast distributes buffers along a binomial tree of channels.
	Broadcast = msg.Broadcast
	// SharedRegion is N-way PRAM-style shared memory with owner slices.
	SharedRegion = msg.SharedRegion
)

// NewEndpoint creates a fresh process on a node.
func NewEndpoint(n *Node) Endpoint { return msg.NewEndpoint(n) }

// NewChannel builds a single-buffered channel of the given page count.
func NewChannel(m *Machine, snd, rcv Endpoint, pages int) (*Channel, error) {
	return msg.NewChannel(m, snd, rcv, pages)
}

// NewDoubleChannel builds a double-buffered channel.
func NewDoubleChannel(m *Machine, snd, rcv Endpoint, pages int) (*DoubleChannel, error) {
	return msg.NewDoubleChannel(m, snd, rcv, pages)
}

// NewBlockSender maps a deliberate-update region with command pages.
func NewBlockSender(m *Machine, snd, rcv Endpoint, pages int) (*BlockSender, error) {
	return msg.NewBlockSender(m, snd, rcv, pages)
}

// NewBarrier builds a reusable barrier; parts[0] is the root.
func NewBarrier(m *Machine, parts []Endpoint) (*Barrier, error) {
	return msg.NewBarrier(m, parts)
}

// NewBroadcast builds a binomial broadcast tree; parts[0] is the root.
func NewBroadcast(m *Machine, parts []Endpoint, pages int) (*Broadcast, error) {
	return msg.NewBroadcast(m, parts, pages)
}

// NewSharedRegion builds an N-way replicated region with owner slices
// (the §4.1 PRAM sharing model generalized beyond two nodes).
func NewSharedRegion(m *Machine, parts []Endpoint, pages int) (*SharedRegion, error) {
	return msg.NewSharedRegion(m, parts, pages)
}

// NXPort is one side of an NX/2-compatible connection: typed messages,
// FIFO dispatch with user-level buffering, probes, and asynchronous
// send/receive — the full programming surface §5.2's csend/crecv belong
// to, running entirely on mapped memory.
type NXPort = nx.Port

// NXAnyType matches any message type in NXPort receives and probes.
const NXAnyType = nx.AnyType

// OpenNXPair connects two endpoints with an NX/2 port on each side.
func OpenNXPair(m *Machine, a, b Endpoint, pages int) (*NXPort, *NXPort, error) {
	return nx.OpenPair(m, a, b, pages)
}

// Evaluation harnesses (the paper's §5 experiments).
type (
	// Overhead is one Table 1 row.
	Overhead = msg.Overhead
	// BaselineComparison is the §5.2 SHRIMP-vs-NX/2 comparison.
	BaselineComparison = msg.BaselineComparison
	// LatencyResult is one §5.1 latency measurement.
	LatencyResult = core.LatencyResult
	// BandwidthResult is one §5.1 bandwidth point.
	BandwidthResult = core.BandwidthResult
	// AUBandwidthResult is one automatic-update ablation point.
	AUBandwidthResult = core.AUBandwidthResult
	// OverlapResult quantifies the §4.1 computation/communication overlap.
	OverlapResult = core.OverlapResult
	// MergeWindowResult is one blocked-write window sweep point.
	MergeWindowResult = core.MergeWindowResult
)

// MeasureTable1 reproduces every row of Table 1 (instruction counts).
func MeasureTable1(gen Generation) []Overhead { return msg.MeasureTable1(gen) }

// MeasureBaseline runs the kernel-mediated NX/2 baseline comparison.
func MeasureBaseline(gen Generation) BaselineComparison { return msg.MeasureBaseline(gen) }

// MeasureStoreLatency measures one automatic-update store end to end.
func MeasureStoreLatency(cfg Config, src, dst int) LatencyResult {
	return core.MeasureStoreLatency(cfg, src, dst)
}

// MeasureStoreLatencyOn is MeasureStoreLatency on a caller-provided
// machine (fresh, or recycled with Machine.Reset) so construction cost
// amortizes across measurements.
func MeasureStoreLatencyOn(m *Machine, src, dst int) LatencyResult {
	return core.MeasureStoreLatencyOn(m, src, dst)
}

// LatencySweep measures store latency from node 0 to every other node.
func LatencySweep(cfg Config) []LatencyResult { return core.LatencySweep(cfg) }

// LatencySweepParallel is LatencySweep fanned across a deterministic
// worker pool (one machine per worker, results in input order — output
// is bit-identical to LatencySweep). workers <= 0 selects
// DefaultSweepWorkers().
func LatencySweepParallel(cfg Config, workers int) []LatencyResult {
	return core.LatencySweepParallel(cfg, workers)
}

// MaxLatency measures the corner-to-corner store latency.
func MaxLatency(cfg Config) LatencyResult { return core.MaxLatency(cfg) }

// MeasureDeliberateBandwidth measures sustained deliberate-update
// bandwidth at one transfer size.
func MeasureDeliberateBandwidth(cfg Config, src, dst, transferBytes, totalBytes int) BandwidthResult {
	return core.MeasureDeliberateBandwidth(cfg, src, dst, transferBytes, totalBytes)
}

// BandwidthSweep sweeps deliberate-update bandwidth over transfer sizes.
func BandwidthSweep(cfg Config, sizes []int, totalBytes int) []BandwidthResult {
	return core.BandwidthSweep(cfg, sizes, totalBytes)
}

// BandwidthSweepParallel is BandwidthSweep on the deterministic worker
// pool; output is bit-identical to BandwidthSweep.
func BandwidthSweepParallel(cfg Config, sizes []int, totalBytes, workers int) []BandwidthResult {
	return core.BandwidthSweepParallel(cfg, sizes, totalBytes, workers)
}

// AUBandwidthSweep runs the automatic-update ablation per mode on the
// deterministic worker pool.
func AUBandwidthSweep(cfg Config, modes []Mode, stores, workers int) []AUBandwidthResult {
	return core.AUBandwidthSweep(cfg, modes, stores, workers)
}

// MergeWindowSweep runs MeasureMergeWindow per window on the
// deterministic worker pool.
func MergeWindowSweep(cfg Config, windows []Time, storeGap Time, stores, workers int) []MergeWindowResult {
	return core.MergeWindowSweep(cfg, windows, storeGap, stores, workers)
}

// OverlapSweep runs MeasureOverlap per mode on the deterministic worker
// pool.
func OverlapSweep(cfg Config, modes []Mode, iters, workers int) []OverlapResult {
	return core.OverlapSweep(cfg, modes, iters, workers)
}

// DefaultSweepWorkers is the worker count the parallel sweeps use when
// asked for workers <= 0 (GOMAXPROCS).
func DefaultSweepWorkers() int { return exp.DefaultWorkers() }

// MeasureAUBandwidth measures automatic-update store streaming (the
// single-write versus blocked-write ablation).
func MeasureAUBandwidth(cfg Config, mode Mode, stores int) AUBandwidthResult {
	return core.MeasureAUBandwidth(cfg, mode, stores)
}

// MeasureOverlap compares CPU-visible completion time of one compute
// loop with and without an automatic-update mapping on its output
// buffer (the §4.1 overlap claim).
func MeasureOverlap(cfg Config, mode Mode, iters int) OverlapResult {
	return core.MeasureOverlap(cfg, mode, iters)
}

// MeasureMergeWindow sweeps the §4.1 blocked-write programmable time
// limit against a fixed inter-store gap.
func MeasureMergeWindow(cfg Config, window, storeGap Time, stores int) MergeWindowResult {
	return core.MeasureMergeWindow(cfg, window, storeGap, stores)
}

// Fault injection and reliable delivery (Config.Faults; DESIGN.md §9).
type (
	// FaultConfig is the machine-wide deterministic fault plan: seeded
	// per-packet drop/corrupt/duplicate/stall rates, one link-outage
	// window, scheduled node crash/freeze events, and the reliable
	// delivery toggle.
	FaultConfig = fault.Config
	// NodeFault schedules one node crash or freeze window.
	NodeFault = fault.NodeFault
	// NodeFaultKind selects crash versus freeze.
	NodeFaultKind = fault.NodeFaultKind
	// MachineCheck is the structured unrecoverable-condition error that
	// Machine.RunUntilIdle and the experiment harnesses surface instead
	// of panicking (retry budget exhausted, FIFO overflow, ring
	// corruption).
	MachineCheck = fault.MachineCheck
	// FaultPoint is one fault-sweep measurement: goodput under loss
	// plus the recovery machinery's accounting.
	FaultPoint = core.FaultPoint
	// PeerDown is the failure detector's structured declaration that a
	// peer crashed (Survivable mode): who, when, and why.
	PeerDown = fault.PeerDown
	// AvailabilityPoint is one crash-survival measurement: survivor
	// goodput, teardown accounting, and the surviving-memory checksum.
	AvailabilityPoint = core.AvailabilityPoint
)

// ErrPeerDown is the sentinel matched (via errors.Is) by every error a
// Survivable-mode kernel or channel returns for a declared-dead peer.
var ErrPeerDown = fault.ErrPeerDown

// Node fault kinds.
const (
	// NodeOK schedules nothing.
	NodeOK = fault.NodeOK
	// NodeCrash kills the node at its scheduled time: the CPU halts and
	// the NIC bit-buckets all arriving traffic from then on.
	NodeCrash = fault.NodeCrash
	// NodeFreeze pauses the CPU for a window; the NIC keeps running.
	NodeFreeze = fault.NodeFreeze
)

// MeasureFaultyTransfer streams a deliberate-update transfer through
// the config's fault plan and reports surviving goodput; a run that
// ends in a machine check comes back with FaultPoint.Err set rather
// than panicking.
func MeasureFaultyTransfer(cfg Config, src, dst, transferBytes, totalBytes int) FaultPoint {
	return core.MeasureFaultyTransfer(cfg, src, dst, transferBytes, totalBytes)
}

// FaultSweep measures goodput across drop rates (ppm) with reliable
// delivery on, fanned across the deterministic worker pool.
func FaultSweep(cfg Config, dropsPPM []uint32, transferBytes, totalBytes, workers int) []FaultPoint {
	return core.FaultSweep(cfg, dropsPPM, transferBytes, totalBytes, workers)
}

// CrashPlan builds a deterministic staggered node-crash plan for
// Config.Faults.Nodes: k distinct victims crashing at base,
// base+stagger, ...
func CrashPlan(n, k int, base, stagger Time) [2]NodeFault {
	return core.CrashPlan(n, k, base, stagger)
}

// MeasureAvailability runs the crash-survival ring workload under the
// config's fault plan (Survivable mode) and reports survivor goodput
// and teardown accounting.
func MeasureAvailability(cfg Config, rounds, wordsPerRound int) AvailabilityPoint {
	return core.MeasureAvailability(cfg, rounds, wordsPerRound)
}

// AvailabilitySweep measures availability across crash counts with
// reliable delivery and Survivable mode forced on.
func AvailabilitySweep(cfg Config, crashes []int, crashBase, crashStagger Time,
	rounds, wordsPerRound, workers int) []AvailabilityPoint {
	return core.AvailabilitySweep(cfg, crashes, crashBase, crashStagger, rounds, wordsPerRound, workers)
}

// CPUBoundResult is one run of the pure instruction-interpretation
// benchmark (see core.MeasureCPUBound).
type CPUBoundResult = core.CPUBoundResult

// MeasureCPUBound runs the instruction-bound compute loop and reports
// instruction/event accounting — the workload the CPU batch quantum
// (Config.CPU.MaxBatch) is benchmarked on.
func MeasureCPUBound(cfg Config, iters int) CPUBoundResult {
	return core.MeasureCPUBound(cfg, iters)
}

// Assembly tooling (the simulated i386-subset used by the measured
// primitives; exposed for the shrimp-asm tool and power users).
type (
	// Program is an assembled ISA routine.
	Program = isa.Program
	// CPU is a node's processor.
	CPU = isa.CPU
)

// Assemble parses ISA assembly text with the given symbol table.
func Assemble(name, src string, syms map[string]int64) (*Program, error) {
	return isa.Assemble(name, src, syms)
}

// AssembleCached is Assemble behind a process-wide predecode cache keyed
// by (name, source, symbols); the returned Program is shared and must be
// treated as read-only.
func AssembleCached(name, src string, syms map[string]int64) (*Program, error) {
	return isa.AssembleCached(name, src, syms)
}
